//! `memfs-cli` — a command-line client for a MemFS cluster.
//!
//! Point it at the storage servers (comma-separated `host:port` list, or
//! the `MEMFS_SERVERS` environment variable) and use familiar verbs:
//!
//! ```text
//! export MEMFS_SERVERS=127.0.0.1:11211,127.0.0.1:11212
//! memfs-cli mkdir /data
//! memfs-cli put local.bin /data/blob
//! memfs-cli ls /data
//! memfs-cli stat /data/blob
//! memfs-cli get /data/blob copy.bin
//! memfs-cli rm /data/blob
//! memfs-cli df
//! ```

use std::io::{Read, Write};

use memfs::memfs_core::{MemFs, MemFsConfig};
use memfs::memkv::net::TcpClient;

fn usage() -> ! {
    eprintln!(
        "memfs-cli — client for a MemFS cluster\n\n\
         usage: memfs-cli [--servers HOST:PORT,...] <command>\n\n\
         commands:\n\
           put <local> <remote>   store a local file (write-once)\n\
           get <remote> <local>   fetch a file\n\
           cat <remote>           print a file to stdout\n\
           ls <dir>               list a directory\n\
           stat <path>            show size/kind\n\
           mkdir <dir>            create a directory (with parents)\n\
           rm <file>              delete a file\n\
           rmdir <dir>            delete an empty directory\n\
           df                     per-server usage statistics\n\n\
         servers come from --servers or $MEMFS_SERVERS"
    );
    std::process::exit(2);
}

fn connect(servers: &str) -> (Vec<String>, MemFs) {
    let addrs: Vec<String> = servers
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if addrs.is_empty() {
        usage();
    }
    // One shared reactor thread multiplexes every server's sockets.
    let fs = MemFs::connect(&addrs, MemFsConfig::default()).unwrap_or_else(|e| {
        eprintln!("memfs-cli: cannot mount {servers}: {e}");
        std::process::exit(1);
    });
    (addrs, fs)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut servers = std::env::var("MEMFS_SERVERS").unwrap_or_default();
    if args.first().map(String::as_str) == Some("--servers") {
        args.remove(0);
        if args.is_empty() {
            usage();
        }
        servers = args.remove(0);
    }
    if args.is_empty() || servers.is_empty() {
        usage();
    }
    let (addrs, fs) = connect(&servers);

    let result: Result<(), Box<dyn std::error::Error>> = (|| {
        match args[0].as_str() {
            "put" if args.len() == 3 => {
                let data = std::fs::read(&args[1])?;
                let mut w = fs.create(&args[2])?;
                w.write_all(&data)?;
                w.close()?;
                println!("stored {} bytes at {}", data.len(), args[2]);
            }
            "get" if args.len() == 3 => {
                let data = fs.read_to_vec(&args[1])?;
                std::fs::write(&args[2], &data)?;
                println!("fetched {} bytes to {}", data.len(), args[2]);
            }
            "cat" if args.len() == 2 => {
                let mut reader = fs.open(&args[1])?;
                let mut buf = Vec::new();
                reader.read_to_end(&mut buf)?;
                std::io::stdout().write_all(&buf)?;
            }
            "ls" if args.len() == 2 => {
                for entry in fs.readdir(&args[1])? {
                    let marker = match entry.kind {
                        memfs::memfs_core::EntryKind::Dir => "/",
                        memfs::memfs_core::EntryKind::File => "",
                    };
                    println!("{}{marker}", entry.name);
                }
            }
            "stat" if args.len() == 2 => {
                let st = fs.stat(&args[1])?;
                println!(
                    "{}: {:?}, {} bytes, finalized={}",
                    args[1], st.kind, st.size, st.finalized
                );
            }
            "mkdir" if args.len() == 2 => fs.mkdir_all(&args[1])?,
            "rm" if args.len() == 2 => fs.unlink(&args[1])?,
            "rmdir" if args.len() == 2 => fs.rmdir(&args[1])?,
            "df" if args.len() == 1 => {
                for addr in &addrs {
                    let probe = TcpClient::connect(addr.as_str())?;
                    let stats = probe.stats()?;
                    let find = |k: &str| {
                        stats
                            .iter()
                            .find(|(n, _)| n == k)
                            .map(|(_, v)| v.clone())
                            .unwrap_or_default()
                    };
                    println!(
                        "{addr}: {} items, {} bytes used",
                        find("curr_items"),
                        find("bytes")
                    );
                }
            }
            _ => usage(),
        }
        Ok(())
    })();

    if let Err(e) = result {
        eprintln!("memfs-cli: {e}");
        std::process::exit(1);
    }
}
