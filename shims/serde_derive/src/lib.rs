//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on result-row structs as
//! documentation of intent (CSV/JSON export is done by hand-written
//! formatters; no serde serializer is ever invoked). The derives here are
//! therefore no-ops: they accept the annotated item and emit nothing, which
//! keeps the attribute valid without pulling in `syn`/`quote`.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
