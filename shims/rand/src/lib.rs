//! Offline stand-in for `rand`.
//!
//! The workspace implements its own deterministic generator (xoshiro256++
//! in `simcore`) and only needs the trait plumbing: [`RngCore`] as the
//! generator interface and [`Rng::gen_range`] for bounded draws. Range
//! sampling uses rejection below a multiple of the span, so draws are
//! unbiased — matching the real crate's guarantee if not its exact output
//! stream (nothing in the workspace depends on `rand`'s stream).

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible generator operations. The deterministic
/// generators in this workspace never fail.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core interface a random number generator implements.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; infallible generators delegate to [`fill_bytes`].
    ///
    /// [`fill_bytes`]: RngCore::fill_bytes
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` by rejection sampling (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64; draws at or above it
    // would bias the low residues, so reject and redraw.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // 53 random bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draw one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(0..10);
            assert!(v < 10);
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_all_residues() {
        let mut rng = Counter(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
