//! Offline stand-in for `criterion`.
//!
//! A small wall-clock benchmarking harness exposing the criterion API
//! subset this workspace's `benches/` use: `Criterion::bench_function`,
//! benchmark groups with `Throughput`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark is
//! calibrated with a short warm-up, then timed over `sample_size` samples;
//! the median per-iteration time (and derived throughput, when declared)
//! is printed to stdout. No statistical regression machinery, no HTML
//! reports — numbers good enough to compare transports are the goal.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark, rendered `function/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Declared per-iteration volume, used to derive throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Override the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Override the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Criterion {
        self.measurement_time = t;
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Criterion {
        let id = id.into();
        run_bench(&id.id, None, self.sample_size, self.measurement_time, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Criterion calls this after all groups; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing configuration and a name prefix.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Override the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Declare per-iteration volume; subsequent benchmarks report
    /// throughput alongside time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(
            &format!("{}/{}", self.name, id.id),
            self.throughput,
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Run a benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// Calibrate, sample, and report one benchmark.
fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    // Warm-up: find an iteration count whose sample time is measurable.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warmup_target = Duration::from_millis(20);
    loop {
        f(&mut bencher);
        if bencher.elapsed >= warmup_target || bencher.iters >= 1 << 30 {
            break;
        }
        bencher.iters = (bencher.iters * 2).max(1);
    }
    let per_iter_ns = (bencher.elapsed.as_nanos() as f64 / bencher.iters as f64).max(1.0);

    // Split the measurement budget into `sample_size` equal samples.
    let per_sample = measurement_time.as_nanos() as f64 / sample_size as f64;
    let iters = ((per_sample / per_iter_ns).round() as u64).max(1);

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        bencher.iters = iters;
        f(&mut bencher);
        samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let best = samples_ns[0];

    let mut line = format!(
        "{label:<48} {:>12}/iter (best {})",
        fmt_ns(median),
        fmt_ns(best)
    );
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mib_s = bytes as f64 / (1 << 20) as f64 / (median / 1e9);
            line.push_str(&format!("  {mib_s:>10.1} MiB/s"));
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / (median / 1e9);
            line.push_str(&format!("  {elem_s:>10.0} elem/s"));
        }
        None => {}
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from one or more group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3).measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_with_throughput_and_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .measurement_time(Duration::from_millis(4))
            .throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::new("copy", 1024), &vec![1u8; 1024], |b, v| {
            b.iter(|| v.clone())
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("set", 42).id, "set/42");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
