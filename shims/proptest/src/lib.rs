//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and the `proptest!` /
//! `prop_assert!` macros this workspace's property tests use, backed by a
//! deterministic splitmix64 stream (same inputs on every run, keyed by
//! test name and case index). Compared to the real crate there is no
//! shrinking — a failing case panics with its case number, and the
//! deterministic stream makes it reproducible by construction.

pub mod strategy {
    use std::ops::{Range, RangeInclusive};

    /// Deterministic random stream for one test case.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Stream keyed by `(test name, case index)` — stable across runs.
        pub fn for_case(name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in name.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Unbiased uniform draw from `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            let zone = u64::MAX - (u64::MAX % span + 1) % span;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }

        /// Uniform in `[lo, hi]` (inclusive).
        pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
            if lo == 0 && hi == u64::MAX {
                return self.next_u64();
            }
            lo + self.below(hi - lo + 1)
        }
    }

    /// A recipe for generating test-case inputs.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Produce one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Types with a canonical full-range strategy, via [`any`].
    pub trait Arbitrary: Sized {
        /// Draw a uniformly random value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Full-range strategy for `T` (`any::<u8>()`, `any::<u64>()`, …).
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// The canonical strategy for an [`Arbitrary`] type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
    }

    /// String strategy from a regex-like pattern. Supports the
    /// `[class]{min,max}` form the workspace uses (character classes with
    /// literals and `a-z` ranges); other patterns generate the pattern
    /// text itself.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_pattern(self) {
                Some((alphabet, min, max)) => {
                    let len = rng.in_range(min as u64, max as u64) as usize;
                    (0..len)
                        .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parse `[class]{min,max}` / `[class]{n}` into (alphabet, min, max).
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            // `a-z` is a range unless `-` is the final character.
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                if lo > hi {
                    return None;
                }
                alphabet.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        let reps = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .to_string();
        let (min, max) = match reps.split_once(',') {
            Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
            None => {
                let n = reps.parse().ok()?;
                (n, n)
            }
        };
        Some((alphabet, min, max))
    }

    /// Number of elements a collection strategy may produce (inclusive).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub(crate) min: usize,
        pub(crate) max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }
}

pub mod collection {
    use super::strategy::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element`, length within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.in_range(self.size.min as u64, self.size.max as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a size within `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` of values from `element`; duplicates are redrawn so the
    /// minimum size is honoured when the element domain allows it.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.in_range(self.size.min as u64, self.size.max as u64) as usize;
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod option {
    use super::strategy::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`, `None` half the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some(value)` or `None` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// A test-case failure (from `prop_assert!` or an explicit `Err`).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Fail the current case with `message`.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

/// Drive one property test: run `f` for each case with its deterministic
/// stream, panicking (with the case index) on the first failure.
pub fn run_proptest<F>(config: test_runner::Config, name: &str, mut f: F)
where
    F: FnMut(&mut strategy::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    for case in 0..config.cases {
        let mut rng = strategy::TestRng::for_case(name, case);
        if let Err(e) = f(&mut rng) {
            panic!(
                "proptest {name} failed on case {case}/{}: {e}",
                config.cases
            );
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy, TestRng};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Define property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            #[test]
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                $crate::run_proptest($config, stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    let case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    case()
                });
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($rest)*
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 0usize..100, f in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 100);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(any::<u8>(), 2..5),
            s in crate::collection::btree_set(0usize..50, 1..4),
            o in crate::option::of(any::<u64>()),
            name in "[a-z0-9_]{1,8}",
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(!s.is_empty() && s.len() < 4);
            if let Some(x) = o {
                let _ = x;
            }
            prop_assert!(!name.is_empty() && name.len() <= 8);
            prop_assert!(name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }

        #[test]
        fn tuples_compose(pair in (0u8..3, 0u8..8)) {
            prop_assert!(pair.0 < 3 && pair.1 < 8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::strategy::TestRng::for_case("t", 0);
        let mut b = crate::strategy::TestRng::for_case("t", 0);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics_with_case() {
        crate::run_proptest(
            crate::test_runner::Config::with_cases(4),
            "always_fails",
            |_rng| Err(crate::test_runner::TestCaseError::fail("nope")),
        );
    }
}
