//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize`/`Deserialize` as empty marker traits and (with the
//! `derive` feature) re-exports the no-op derives from `serde_derive`, so
//! `use serde::{Serialize, Deserialize}` + `#[derive(...)]` compile
//! unchanged. No serializer backend exists; the workspace writes its CSV
//! and report output with hand-rolled formatters.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that declare a serializable shape.
pub trait Serialize {}

/// Marker for types that declare a deserializable shape.
pub trait Deserialize {}
