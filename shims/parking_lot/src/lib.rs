//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` calling
//! conventions the workspace uses: infallible `lock()`/`read()`/`write()`
//! (poisoning is swallowed — a panicking holder does not wedge the whole
//! store), and `Condvar::wait(&mut guard)` taking the guard by reference.
//! The real crate is faster under contention; the semantics are identical
//! for correct programs.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion with infallible locking.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can move the std guard out and back.
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking. Poison from a panicked holder is
    /// cleared rather than propagated.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait; the lock is
    /// reacquired before returning (parking_lot signature: guard by
    /// `&mut`, no poison result).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present before wait");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(inner);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Reader-writer lock with infallible acquisition.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_round_trip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
            drop(done);
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
        assert!(*m.lock());
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
