//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small API subset it actually uses: [`Bytes`] (a cheaply cloneable,
//! immutable byte buffer) and [`BytesMut`] (a growable builder that freezes
//! into a `Bytes`). Semantics match the real crate for this subset; the
//! zero-copy `slice`/`split_to` machinery of the real crate is reduced to
//! an `Arc`-shared backing vector with an offset window, which preserves
//! the two properties MemFS relies on: `clone` is O(1), and frozen buffers
//! never reallocate.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes {
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    /// Borrowed from static storage — no allocation, no refcount.
    Static(&'static [u8]),
    /// Shared ownership of a heap buffer; `off..off + len` is this view.
    Shared {
        buf: Arc<Vec<u8>>,
        off: usize,
        len: usize,
    },
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Bytes {
        Bytes {
            inner: Inner::Static(&[]),
        }
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            inner: Inner::Static(data),
        }
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Static(s) => s.len(),
            Inner::Shared { len, .. } => *len,
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view sharing the same backing storage (O(1), no copy).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        match &self.inner {
            Inner::Static(s) => Bytes {
                inner: Inner::Static(&s[range]),
            },
            Inner::Shared { buf, off, .. } => Bytes {
                inner: Inner::Shared {
                    buf: Arc::clone(buf),
                    off: off + range.start,
                    len: range.end - range.start,
                },
            },
        }
    }

    /// Split off and return the first `at` bytes as their own view,
    /// advancing this buffer past them. O(1): both halves share the same
    /// backing storage (matching the real crate's `split_to`).
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(0..at);
        match &mut self.inner {
            Inner::Static(s) => *s = &s[at..],
            Inner::Shared { off, len, .. } => {
                *off += at;
                *len -= at;
            }
        }
        head
    }

    fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared { buf, off, len } => &buf[*off..*off + *len],
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            inner: Inner::Shared {
                buf: Arc::new(v),
                off: 0,
                len,
            },
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// Memcached-ish `b"...."` rendering with escapes, truncated for large
/// payloads (stripes are megabytes; debug output should not be).
fn fmt_bytes(data: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in data.iter().take(64) {
        match b {
            b'"' => write!(f, "\\\"")?,
            b'\\' => write!(f, "\\\\")?,
            b'\r' => write!(f, "\\r")?,
            b'\n' => write!(f, "\\n")?,
            0x20..=0x7e => write!(f, "{}", b as char)?,
            _ => write!(f, "\\x{b:02x}")?,
        }
    }
    if data.len() > 64 {
        write!(f, "… ({} bytes)", data.len())?;
    }
    write!(f, "\"")
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_bytes(self.as_slice(), f)
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty builder with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the builder holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reserved capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Truncate to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Clear contents, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Take the accumulated bytes, leaving this builder empty (the real
    /// crate splits off the filled prefix; for the append-then-drain use
    /// in this workspace the two are equivalent).
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            buf: std::mem::take(&mut self.buf),
        }
    }

    /// Convert into an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_bytes(&self.buf, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_shared_not_copied() {
        let b = Bytes::from(vec![1u8; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        if let (Inner::Shared { buf: a, .. }, Inner::Shared { buf: d, .. }) = (&b.inner, &c.inner) {
            assert!(Arc::ptr_eq(a, d));
        } else {
            panic!("expected shared buffers");
        }
    }

    #[test]
    fn static_and_slice_views() {
        let s = Bytes::from_static(b"hello world");
        assert_eq!(s.len(), 11);
        let w = s.slice(6..11);
        assert_eq!(w.as_ref(), b"world");
        let v = Bytes::from(b"hello world".to_vec()).slice(0..5);
        assert_eq!(v.as_ref(), b"hello");
    }

    #[test]
    fn bytes_mut_round_trip() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"ab");
        m.extend_from_slice(b"cd");
        assert_eq!(m.len(), 4);
        let taken = m.split();
        assert!(m.is_empty());
        assert_eq!(taken.freeze().as_ref(), b"abcd");
    }

    #[test]
    fn split_to_shares_storage_and_advances() {
        let mut b = Bytes::from((0u8..100).collect::<Vec<u8>>());
        let head = b.split_to(30);
        assert_eq!(head.len(), 30);
        assert_eq!(b.len(), 70);
        assert_eq!(head[0], 0);
        assert_eq!(b[0], 30);
        if let (Inner::Shared { buf: a, .. }, Inner::Shared { buf: d, .. }) =
            (&head.inner, &b.inner)
        {
            assert!(Arc::ptr_eq(a, d), "split_to must not copy");
        } else {
            panic!("expected shared buffers");
        }
        // Static views split too.
        let mut s = Bytes::from_static(b"hello world");
        assert_eq!(s.split_to(5).as_ref(), b"hello");
        assert_eq!(s.as_ref(), b" world");
    }

    #[test]
    fn equality_and_debug() {
        let b = Bytes::from_static(b"x\r\n");
        assert_eq!(b, Bytes::copy_from_slice(b"x\r\n"));
        assert_eq!(format!("{b:?}"), "b\"x\\r\\n\"");
    }
}
