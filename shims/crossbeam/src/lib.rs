//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` — the only
//! surface this workspace uses (the thread pool's job queue). Unlike
//! `std::sync::mpsc`, receivers are cloneable and shareable (MPMC), which
//! is exactly what the fixed-size worker pool needs. Implemented as a
//! mutex-guarded queue with a condvar; throughput is more than adequate
//! for stripe-sized jobs.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream: Debug without requiring `T: Debug` (the payload is
    // routinely a boxed closure).
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Queue a value; fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block for the next value; fails once the channel is drained and
        /// every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .cv
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_fan_out() {
            let (tx, rx) = unbounded::<u32>();
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v as u64;
                        }
                        sum
                    })
                })
                .collect();
            for i in 0..1000u32 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(total, 999 * 1000 / 2);
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_drains_then_disconnects() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
