//! Offline stand-in for `libc`.
//!
//! Declares exactly the Linux syscall surface the memkv evented transport
//! needs — epoll for readiness notification, eventfd for cross-thread
//! wakeups, and non-blocking stream sockets for in-loop connects — with
//! the kernel ABI types and constants those calls take. The symbols
//! resolve against the system C library every Rust binary already links;
//! no C code is vendored.

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_uint = u32;
pub type c_void = core::ffi::c_void;
pub type size_t = usize;
pub type ssize_t = isize;
pub type socklen_t = u32;
pub type sa_family_t = u16;

/// One epoll readiness record. The kernel packs this struct on x86-64
/// (a 12-byte layout); other architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub u64: u64,
}

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;
pub const EPOLL_CLOEXEC: c_int = 0x80000;

pub const EFD_CLOEXEC: c_int = 0x80000;
pub const EFD_NONBLOCK: c_int = 0x800;

pub const AF_INET: c_int = 2;
pub const AF_INET6: c_int = 10;
pub const SOCK_STREAM: c_int = 1;
pub const SOCK_NONBLOCK: c_int = 0o4000;
pub const SOCK_CLOEXEC: c_int = 0x80000;
pub const SOL_SOCKET: c_int = 1;
pub const SO_ERROR: c_int = 4;
pub const IPPROTO_TCP: c_int = 6;
pub const TCP_NODELAY: c_int = 1;
pub const EINPROGRESS: c_int = 115;
pub const EINTR: c_int = 4;

/// IPv4 address, network byte order (kernel `struct in_addr`).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct in_addr {
    pub s_addr: u32,
}

/// `struct sockaddr_in` — IPv4 socket address; `sin_port` is big-endian.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sockaddr_in {
    pub sin_family: sa_family_t,
    pub sin_port: u16,
    pub sin_addr: in_addr,
    pub sin_zero: [u8; 8],
}

/// IPv6 address (kernel `struct in6_addr`).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct in6_addr {
    pub s6_addr: [u8; 16],
}

/// `struct sockaddr_in6` — IPv6 socket address; `sin6_port` is big-endian.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sockaddr_in6 {
    pub sin6_family: sa_family_t,
    pub sin6_port: u16,
    pub sin6_flowinfo: u32,
    pub sin6_addr: in6_addr,
    pub sin6_scope_id: u32,
}

/// Generic socket address header, for casting in `connect`.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sockaddr {
    pub sa_family: sa_family_t,
    pub sa_data: [u8; 14],
}

extern "C" {
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    pub fn close(fd: c_int) -> c_int;
    pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    pub fn connect(sockfd: c_int, addr: *const sockaddr, addrlen: socklen_t) -> c_int;
    pub fn getsockopt(
        sockfd: c_int,
        level: c_int,
        optname: c_int,
        optval: *mut c_void,
        optlen: *mut socklen_t,
    ) -> c_int;
    pub fn setsockopt(
        sockfd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: socklen_t,
    ) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_round_trip_via_eventfd() {
        unsafe {
            let ep = epoll_create1(EPOLL_CLOEXEC);
            assert!(ep >= 0);
            let ev = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
            assert!(ev >= 0);
            let mut reg = epoll_event {
                events: EPOLLIN,
                u64: 7,
            };
            assert_eq!(epoll_ctl(ep, EPOLL_CTL_ADD, ev, &mut reg), 0);

            // Nothing written yet: wait times out with zero events.
            let mut out = [epoll_event { events: 0, u64: 0 }; 4];
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            // A write makes the eventfd readable and carries the token.
            let one: u64 = 1;
            assert_eq!(
                write(ev, (&one as *const u64).cast(), 8),
                8,
                "eventfd write"
            );
            let n = epoll_wait(ep, out.as_mut_ptr(), 4, 1000);
            assert_eq!(n, 1);
            assert_eq!({ out[0].u64 }, 7);
            assert!(out[0].events & EPOLLIN != 0);

            let mut drained: u64 = 0;
            assert_eq!(read(ev, (&mut drained as *mut u64).cast(), 8), 8);
            assert_eq!(drained, 1);

            assert_eq!(close(ev), 0);
            assert_eq!(close(ep), 0);
        }
    }

    #[test]
    fn nonblocking_connect_reports_einprogress_then_success() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        unsafe {
            let fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
            assert!(fd >= 0);
            let addr = sockaddr_in {
                sin_family: AF_INET as sa_family_t,
                sin_port: port.to_be(),
                sin_addr: in_addr {
                    s_addr: u32::from_ne_bytes([127, 0, 0, 1]),
                },
                sin_zero: [0; 8],
            };
            let rc = connect(
                fd,
                (&addr as *const sockaddr_in).cast(),
                core::mem::size_of::<sockaddr_in>() as socklen_t,
            );
            if rc != 0 {
                assert_eq!(
                    std::io::Error::last_os_error().raw_os_error(),
                    Some(EINPROGRESS)
                );
            }
            // Loopback connects resolve almost immediately; poll SO_ERROR.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
            loop {
                let mut err: c_int = -1;
                let mut len = core::mem::size_of::<c_int>() as socklen_t;
                assert_eq!(
                    getsockopt(
                        fd,
                        SOL_SOCKET,
                        SO_ERROR,
                        (&mut err as *mut c_int).cast(),
                        &mut len
                    ),
                    0
                );
                if err == 0 {
                    break;
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "connect never resolved: {err}"
                );
                std::thread::yield_now();
            }
            assert_eq!(close(fd), 0);
        }
    }
}
