//! Offline stand-in for `libc`.
//!
//! Declares exactly the Linux syscall surface the memkv evented transport
//! needs — epoll for readiness notification and eventfd for cross-thread
//! wakeups — with the kernel ABI types and constants those calls take.
//! The symbols resolve against the system C library every Rust binary
//! already links; no C code is vendored.

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_uint = u32;
pub type c_void = core::ffi::c_void;
pub type size_t = usize;
pub type ssize_t = isize;

/// One epoll readiness record. The kernel packs this struct on x86-64
/// (a 12-byte layout); other architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub u64: u64,
}

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;
pub const EPOLL_CLOEXEC: c_int = 0x80000;

pub const EFD_CLOEXEC: c_int = 0x80000;
pub const EFD_NONBLOCK: c_int = 0x800;

extern "C" {
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    pub fn close(fd: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_round_trip_via_eventfd() {
        unsafe {
            let ep = epoll_create1(EPOLL_CLOEXEC);
            assert!(ep >= 0);
            let ev = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
            assert!(ev >= 0);
            let mut reg = epoll_event {
                events: EPOLLIN,
                u64: 7,
            };
            assert_eq!(epoll_ctl(ep, EPOLL_CTL_ADD, ev, &mut reg), 0);

            // Nothing written yet: wait times out with zero events.
            let mut out = [epoll_event { events: 0, u64: 0 }; 4];
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            // A write makes the eventfd readable and carries the token.
            let one: u64 = 1;
            assert_eq!(
                write(ev, (&one as *const u64).cast(), 8),
                8,
                "eventfd write"
            );
            let n = epoll_wait(ep, out.as_mut_ptr(), 4, 1000);
            assert_eq!(n, 1);
            assert_eq!({ out[0].u64 }, 7);
            assert!(out[0].events & EPOLLIN != 0);

            let mut drained: u64 = 0;
            assert_eq!(read(ev, (&mut drained as *mut u64).cast(), 8), 8);
            assert_eq!(drained, 1);

            assert_eq!(close(ev), 0);
            assert_eq!(close(ep), 0);
        }
    }
}
