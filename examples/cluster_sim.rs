//! Drive the cluster simulator directly: run Montage 6x6 on a simulated
//! 16-node DAS4 under both file systems and compare stage times and
//! memory distribution — a pocket edition of the paper's Figures 8a/9 and
//! Table 3.
//!
//! ```text
//! cargo run --release --example cluster_sim
//! ```

use memfs::cluster::{ClusterSpec, Deployment};
use memfs::mtc::fsmodel::FsModelKind;
use memfs::mtc::montage::montage;
use memfs::mtc::sched::SchedulerKind;
use memfs::mtc::WorkflowSim;

fn main() {
    let workflow = montage(6, 512);
    println!(
        "workflow: {} — {} tasks, {:.1} GB runtime data",
        workflow.name,
        workflow.tasks.len(),
        workflow.runtime_bytes() as f64 / 1e9
    );

    let configs = [
        (
            "MemFS + uniform scheduling",
            FsModelKind::MemFs,
            SchedulerKind::Uniform,
            false,
        ),
        (
            "AMFS  + locality scheduling",
            FsModelKind::Amfs,
            SchedulerKind::LocalityAware,
            true,
        ),
    ];

    for (label, fs, scheduler, single_mount) in configs {
        let mut deployment = Deployment::full(ClusterSpec::das4_ipoib(16));
        if single_mount {
            deployment = deployment.with_single_mount();
        }
        let sim = WorkflowSim {
            deployment,
            fs,
            scheduler,
        };
        let result = sim.run(&workflow);
        println!("\n== {label} ==");
        if let Some(err) = &result.failed {
            println!("  RUN FAILED: {err}");
            continue;
        }
        println!("  makespan: {:.1} s", result.makespan_secs);
        for (stage, secs) in &result.stage_secs {
            let bw = result.stage_bw_per_node.get(stage).copied().unwrap_or(0.0);
            println!(
                "  {stage:<12} {secs:>7.1} s   {:>6.0} MB/s per node",
                bw / 1e6
            );
        }
        let peaks = &result.peak_mem_per_node;
        let mean = peaks.iter().sum::<u64>() as f64 / peaks.len() as f64;
        let max = *peaks.iter().max().unwrap() as f64;
        println!(
            "  memory: aggregate peak {:.1} GB, node imbalance {:.2} (scheduler node {:.1} GB)",
            result.aggregate_peak_mem as f64 / 1e9,
            max / mean,
            peaks[0] as f64 / 1e9,
        );
    }
}
