//! A genuinely distributed MemFS: four storage servers speaking the
//! memcached text protocol over TCP (localhost), one mount striping files
//! across them through `TcpClient`s — the paper's deployment shape with
//! real sockets.
//!
//! ```text
//! cargo run --release --example tcp_cluster
//! ```

use std::sync::Arc;

use memfs::memfs_core::{MemFs, MemFsConfig};
use memfs::memkv::net::{KvServer, TcpClient};
use memfs::memkv::{Store, StoreConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Start four storage servers on ephemeral localhost ports.
    let mut kv_servers: Vec<KvServer> = (0..4)
        .map(|_| {
            KvServer::spawn(Arc::new(Store::new(StoreConfig::default())), "127.0.0.1:0")
                .expect("bind storage server")
        })
        .collect();
    let addrs: Vec<_> = kv_servers.iter().map(|s| s.addr()).collect();
    println!("storage servers listening on:");
    for a in &addrs {
        println!("  {a}");
    }

    // Mount MemFS over TCP — this is the Libmemcached role: the client
    // hashes each stripe key to a server; the servers never talk to each
    // other. Each client keeps a small connection pool and pipelines
    // batched requests (prefetch windows and write drains travel as
    // multi-key frames); all of the mount's sockets are multiplexed on
    // one shared reactor thread.
    let config = MemFsConfig {
        stripe_size: 256 << 10,
        ..MemFsConfig::default()
    };
    let fs = MemFs::connect(&addrs, config)?;

    // Push a 16 MiB file through the wire, striped.
    let payload: Vec<u8> = (0..16usize << 20).map(|i| (i % 253) as u8).collect();
    let start = std::time::Instant::now();
    fs.write_file("/wire.dat", &payload)?;
    let wrote = start.elapsed();

    let start = std::time::Instant::now();
    let back = fs.read_to_vec("/wire.dat")?;
    let read = start.elapsed();
    assert_eq!(back, payload);

    let mb = payload.len() as f64 / 1e6;
    println!(
        "\n16 MiB round trip over TCP: write {:.0} MB/s, read {:.0} MB/s",
        mb / wrote.as_secs_f64(),
        mb / read.as_secs_f64()
    );

    // Ask each server for its memcached-style STAT block.
    println!("\nper-server statistics (via the text protocol):");
    for (i, a) in addrs.iter().enumerate() {
        let probe = TcpClient::connect(a)?;
        let stats = probe.stats()?;
        let get = |k: &str| {
            stats
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.as_str())
                .unwrap_or("?")
                .to_string()
        };
        println!(
            "  server {i}: {} items, {} bytes, {} sets, {} gets, {} batched multi-gets",
            get("curr_items"),
            get("bytes"),
            get("cmd_set"),
            get("cmd_get"),
            get("cmd_mget"),
        );
    }

    for s in &mut kv_servers {
        s.shutdown();
    }
    Ok(())
}
