//! A miniature Montage-style workflow running on the **real** MemFS
//! engine with real bytes and real worker threads — the paper's Figure 1a
//! dataflow in the small: project each input image, diff overlapping
//! pairs, model the background, correct every image, and co-add.
//!
//! The point demonstrated: every task reads its inputs at full speed no
//! matter which worker runs it (locality-agnosticism), and the storage
//! load stays balanced across servers.
//!
//! ```text
//! cargo run --release --example montage_workflow
//! ```

use std::sync::Arc;

use memfs::memfs_core::{MemFs, MemFsConfig};
use memfs::memkv::{KvClient, LocalClient, Store, StoreConfig};

const N_IMAGES: usize = 24;
const IMAGE_BYTES: usize = 512 * 1024;

fn checksum(data: &[u8]) -> u64 {
    data.iter()
        .fold(0u64, |acc, &b| acc.wrapping_mul(31).wrapping_add(b as u64))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stores: Vec<Arc<Store>> = (0..8)
        .map(|_| Arc::new(Store::new(StoreConfig::default())))
        .collect();
    let servers: Vec<Arc<dyn KvClient>> = stores
        .iter()
        .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
        .collect();
    let fs = MemFs::new(servers, MemFsConfig::default())?;
    for dir in ["/in", "/proj", "/diff", "/bg", "/out"] {
        fs.mkdir(dir)?;
    }

    // Stage in the input images.
    for i in 0..N_IMAGES {
        let image: Vec<u8> = (0..IMAGE_BYTES)
            .map(|b| ((b * (i + 3)) % 251) as u8)
            .collect();
        fs.write_file(&format!("/in/img_{i:03}.fits"), &image)?;
    }
    println!("staged {N_IMAGES} input images");

    // mProjectPP: one task per image, fanned out over worker threads —
    // MemFS does not care which worker handles which image.
    run_stage("mProjectPP", N_IMAGES, &fs, |fs, i| {
        let img = fs.read_to_vec(&format!("/in/img_{i:03}.fits"))?;
        let projected: Vec<u8> = img.iter().map(|&b| b.wrapping_add(1)).collect();
        fs.write_file(&format!("/proj/img_{i:03}.fits"), &projected)
    })?;

    // mDiffFit: each task reads TWO projected images — the access pattern
    // that breaks single-file locality scheduling (paper §4.2).
    run_stage("mDiffFit", N_IMAGES, &fs, |fs, i| {
        let a = fs.read_to_vec(&format!("/proj/img_{i:03}.fits"))?;
        let b = fs.read_to_vec(&format!("/proj/img_{:03}.fits", (i + 1) % N_IMAGES))?;
        let diff: Vec<u8> = a.iter().zip(&b).map(|(&x, &y)| x.wrapping_sub(y)).collect();
        fs.write_file(&format!("/diff/diff_{i:03}.fits"), &diff)
    })?;

    // mBgModel: one global aggregation over all diffs.
    let mut correction = 0u64;
    for i in 0..N_IMAGES {
        let diff = fs.read_to_vec(&format!("/diff/diff_{i:03}.fits"))?;
        correction = correction.wrapping_add(checksum(&diff));
    }
    fs.write_file("/bg/corrections.tbl", &correction.to_le_bytes())?;
    println!("mBgModel: global correction = {correction:#x}");

    // mBackground: every task reads its projection plus the shared
    // corrections table (an N-1 read).
    run_stage("mBackground", N_IMAGES, &fs, |fs, i| {
        let proj = fs.read_to_vec(&format!("/proj/img_{i:03}.fits"))?;
        let corr = fs.read_to_vec("/bg/corrections.tbl")?;
        let delta = corr[0];
        let fixed: Vec<u8> = proj.iter().map(|&b| b.wrapping_sub(delta)).collect();
        fs.write_file(&format!("/bg/bg_{i:03}.fits"), &fixed)
    })?;

    // mAdd: co-add everything into the mosaic.
    let mut mosaic = vec![0u8; IMAGE_BYTES];
    for i in 0..N_IMAGES {
        let bg = fs.read_to_vec(&format!("/bg/bg_{i:03}.fits"))?;
        for (m, &b) in mosaic.iter_mut().zip(&bg) {
            *m = m.wrapping_add(b);
        }
    }
    fs.write_file("/out/mosaic.fits", &mosaic)?;
    println!("mAdd: mosaic checksum = {:#x}", checksum(&mosaic));

    // The paper's storage-balance claim, observed on real stores.
    let loads: Vec<u64> = stores.iter().map(|s| s.bytes_used()).collect();
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    let max = *loads.iter().max().unwrap() as f64;
    println!("\nper-server load (bytes): {loads:?}");
    println!(
        "imbalance (max/mean): {:.2} — symmetric distribution",
        max / mean
    );
    Ok(())
}

/// Run `task` for every index in parallel worker threads sharing the
/// mount (MemFS handles are cheap clones).
fn run_stage<F>(name: &str, n: usize, fs: &MemFs, task: F) -> Result<(), Box<dyn std::error::Error>>
where
    F: Fn(&MemFs, usize) -> Result<(), memfs::memfs_core::MemFsError> + Send + Sync,
{
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        let task = &task;
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let fs = fs.clone();
                scope.spawn(move || {
                    for i in (w..n).step_by(4) {
                        task(&fs, i).expect("task failed");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
    });
    println!("{name}: {n} tasks on 4 workers in {:?}", start.elapsed());
    Ok(())
}
