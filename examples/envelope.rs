//! Evaluate the MTC Envelope model interactively: pass a node count (and
//! optionally a file size in KB) to see all eight envelope metrics for
//! MemFS and AMFS on the DAS4-IPoIB profile.
//!
//! ```text
//! cargo run --example envelope -- 64
//! cargo run --example envelope -- 32 1024
//! ```

use memfs::cluster::ClusterSpec;
use memfs::mtc::{EnvelopeModel, EnvelopePoint};

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let file_kb: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1024);
    let file = file_kb * 1000;

    let model = EnvelopeModel::new(ClusterSpec::das4_ipoib(nodes));
    println!("MTC Envelope @ {nodes} nodes, {file_kb} KB files (DAS4-IPoIB)\n");
    println!(
        "{:<22} {:>12} {:>12} {:>14} {:>14}",
        "metric", "MemFS MB/s", "AMFS MB/s", "MemFS op/s", "AMFS op/s"
    );

    let print = |name: &str, m: EnvelopePoint, a: EnvelopePoint| {
        println!(
            "{:<22} {:>12.0} {:>12.0} {:>14.0} {:>14.0}",
            name,
            m.bandwidth / 1e6,
            a.bandwidth / 1e6,
            m.throughput,
            a.throughput
        );
    };
    print("write", model.memfs_write(file), model.amfs_write(file));
    print(
        "1-1 read",
        model.memfs_read_1_1(file),
        model.amfs_read_1_1(file),
    );
    print(
        "N-1 read",
        model.memfs_read_n_1(file),
        model.amfs_read_n_1(file),
    );

    println!("\nmetadata (op/s):");
    println!(
        "  create: MemFS {:>8.0}   AMFS {:>8.0}",
        model.memfs_create(),
        model.amfs_create()
    );
    println!(
        "  open:   MemFS {:>8.0}   AMFS {:>8.0}",
        model.memfs_open(),
        model.amfs_open()
    );
    println!(
        "\nAMFS 1-1 read when locality is lost: {:.0} MB/s (MemFS is {:.2}x faster)",
        model.amfs_read_1_1_remote(file).bandwidth / 1e6,
        model.memfs_read_1_1(file).bandwidth / model.amfs_read_1_1_remote(file).bandwidth
    );
}
