//! Quickstart: mount MemFS over a handful of in-process storage servers,
//! write once, read many.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use memfs::memfs_core::{MemFs, MemFsConfig, MemFsError};
use memfs::memkv::{KvClient, LocalClient, Store, StoreConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four storage "nodes": each exposes its DRAM through a
    // memcached-style store (paper §3.1.1).
    let stores: Vec<Arc<Store>> = (0..4)
        .map(|_| Arc::new(Store::new(StoreConfig::default())))
        .collect();
    let servers: Vec<Arc<dyn KvClient>> = stores
        .iter()
        .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
        .collect();

    // Mount. Defaults are the paper's design points: 512 KiB stripes,
    // 8 MiB write buffer and read cache, distributed modulo hashing.
    let fs = MemFs::new(servers, MemFsConfig::default())?;

    // Write once (buffered, striped across all four servers)...
    fs.mkdir("/results")?;
    let mut writer = fs.create("/results/answer.dat")?;
    for chunk in 0..8 {
        let payload = vec![chunk as u8; 256 * 1024];
        writer.write_all(&payload)?;
    }
    writer.close()?; // drains the write buffer, publishes the size

    // ...read many, from any mount, in any order (POSIX reads, §3.2.3).
    let reader = fs.open("/results/answer.dat")?;
    println!("file size: {} bytes", reader.size());
    let mut buf = vec![0u8; 1024];
    let n = reader.read_at(5 * 256 * 1024, &mut buf)?;
    println!(
        "read {} bytes at offset 1.25 MiB: first byte = {}",
        n, buf[0]
    );
    assert_eq!(buf[0], 5);

    // Directory listing comes from the append-only directory log.
    for entry in fs.readdir("/results")? {
        println!("/results/{} ({:?})", entry.name, entry.kind);
    }

    // Write-once is enforced: a second create of the same path fails.
    match fs.create("/results/answer.dat") {
        Err(MemFsError::WriteOnce(path)) => {
            println!("write-once enforced for {path}");
        }
        other => panic!("expected a write-once violation, got {other:?}"),
    }

    // The whole point: the file's stripes are spread evenly, so no node's
    // memory is a hotspot.
    println!("\nper-server bytes stored (symmetric data distribution):");
    for (i, store) in stores.iter().enumerate() {
        println!("  server {}: {} bytes", i, store.bytes_used());
    }
    Ok(())
}
