//! Elastic scale-out — the paper's future-work scenario, working: write a
//! data set through a ketama-hashed mount, add a storage server at
//! "runtime", rebalance the minimal set of keys, and keep reading.
//!
//! ```text
//! cargo run --release --example elastic_scaleout
//! ```

use std::sync::Arc;

use memfs::memfs_core::elastic::rebalance;
use memfs::memfs_core::{DistributorKind, MemFs, MemFsConfig, ServerPool};
use memfs::memkv::{KvClient, LocalClient, Store, StoreConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ketama = DistributorKind::Ketama {
        points_per_server: 160,
    };
    let config = MemFsConfig {
        distributor: ketama,
        stripe_size: 64 << 10,
        ..MemFsConfig::default()
    };

    // Day 1: four storage servers.
    let stores: Vec<Arc<Store>> = (0..5)
        .map(|_| Arc::new(Store::new(StoreConfig::default())))
        .collect();
    let clients = |range: &[Arc<Store>]| -> Vec<Arc<dyn KvClient>> {
        range
            .iter()
            .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
            .collect()
    };
    let old_pool = Arc::new(ServerPool::new(clients(&stores[..4]), ketama));
    let fs = MemFs::with_pool(Arc::clone(&old_pool), config.clone())?;

    fs.mkdir("/dataset")?;
    for i in 0..32 {
        let data: Vec<u8> = (0..200_000usize).map(|b| ((b + i) % 251) as u8).collect();
        fs.write_file(&format!("/dataset/part{i:02}"), &data)?;
    }
    println!("wrote 32 files (~6.4 MB) over 4 servers");
    for (i, s) in stores[..4].iter().enumerate() {
        println!("  server {i}: {:>9} bytes", s.bytes_used());
    }

    // Storage pressure grows: bring server 4 online and rebalance.
    let new_pool = Arc::new(ServerPool::new(clients(&stores), ketama));
    let report = rebalance(&old_pool, &new_pool)?;
    println!(
        "\nrebalanced: {} of {} keys moved ({:.0}%), {:.1} MB copied",
        report.moved_keys,
        report.scanned_keys,
        100.0 * report.moved_keys as f64 / report.scanned_keys as f64,
        report.moved_bytes as f64 / 1e6,
    );

    // The mount over the grown pool sees everything, now on 5 servers.
    let fs = MemFs::with_pool(new_pool, config)?;
    for i in 0..32 {
        let data = fs.read_to_vec(&format!("/dataset/part{i:02}"))?;
        assert_eq!(data.len(), 200_000);
    }
    println!("\nall files verified after scale-out; load now:");
    for (i, s) in stores.iter().enumerate() {
        println!("  server {i}: {:>9} bytes", s.bytes_used());
    }
    println!(
        "\nconsistent hashing moved only ~1/{} of the data — the modulo\n\
         scheme would have moved nearly all of it (see the hashing bench).",
        stores.len()
    );
    Ok(())
}
