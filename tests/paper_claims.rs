//! Integration tests asserting the paper's headline claims end-to-end
//! through the simulation stack (run in release for speed: the suite
//! simulates multi-node clusters).

use memfs::cluster::{ClusterSpec, Deployment};
use memfs::mtc::experiments::scaling::{run_config, MONTAGE_STAGES};
use memfs::mtc::fsmodel::FsModelKind;
use memfs::mtc::montage::montage;
use memfs::mtc::{blast, EnvelopeModel};

const MB: u64 = 1_000_000;

/// §4.2.1/§5: "AMFS is unable to run [Montage 12x12] because the
/// 'scheduler node' crashes when trying to accumulate large amounts of
/// data that do not fit in its main memory. ... MemFS is able to run
/// 12x12 Montage."
#[test]
fn montage12_amfs_crashes_memfs_completes() {
    let wf = montage(12, 256);
    let d = Deployment::full(ClusterSpec::das4_ipoib(16));
    let memfs = run_config("t", &wf, d.clone(), FsModelKind::MemFs, &MONTAGE_STAGES);
    let amfs = run_config("t", &wf, d, FsModelKind::Amfs, &MONTAGE_STAGES);
    assert!(
        memfs.iter().all(|r| r.failed.is_none()),
        "MemFS must complete Montage 12: {:?}",
        memfs[0].failed
    );
    assert!(
        amfs.iter().all(|r| r.failed.is_some()),
        "AMFS must crash on Montage 12"
    );
    let msg = amfs[0].failed.as_deref().unwrap();
    assert!(
        msg.contains("node 0"),
        "the crash is on the scheduler node: {msg}"
    );
}

/// §4.1 / Table 1: MemFS outperforms AMFS on every envelope metric at
/// 1 MB except none; at 128 MB AMFS wins only the local 1-1 read.
#[test]
fn envelope_winner_pattern() {
    let m = EnvelopeModel::new(ClusterSpec::das4_ipoib(64));
    // 1 MB: MemFS sweeps.
    assert!(m.memfs_write(MB).bandwidth > m.amfs_write(MB).bandwidth);
    assert!(m.memfs_read_1_1(MB).bandwidth > m.amfs_read_1_1(MB).bandwidth);
    assert!(m.memfs_read_n_1(MB).bandwidth > m.amfs_read_n_1(MB).bandwidth);
    // 128 MB: AMFS' local read is the single exception.
    assert!(m.amfs_read_1_1(128 * MB).bandwidth > m.memfs_read_1_1(128 * MB).bandwidth);
    assert!(m.memfs_write(128 * MB).bandwidth > m.amfs_write(128 * MB).bandwidth);
    assert!(m.memfs_read_n_1(128 * MB).bandwidth > m.amfs_read_n_1(128 * MB).bandwidth);
}

/// §4.1: losing locality costs AMFS ~4.6x against MemFS on IPoIB, and
/// MemFS stays ahead even on gigabit Ethernet.
#[test]
fn locality_loss_factors() {
    let ipoib = EnvelopeModel::new(ClusterSpec::das4_ipoib(64));
    let factor = ipoib.memfs_read_1_1(MB).bandwidth / ipoib.amfs_read_1_1_remote(MB).bandwidth;
    assert!(
        (3.5..6.5).contains(&factor),
        "IPoIB factor {factor} vs paper's 4.63"
    );

    let gbe = EnvelopeModel::new(ClusterSpec::das4_gbe(64));
    let factor = gbe.memfs_read_1_1(MB).bandwidth / gbe.amfs_read_1_1_remote(MB).bandwidth;
    assert!(
        factor > 1.0,
        "MemFS must stay ahead on 1GbE (paper: 1.4x), got {factor}"
    );
}

/// §4.2.2 / Figure 10: with one FUSE mountpoint MemFS cannot scale past
/// ~8 processes per EC2 node; per-process mountpoints restore scaling.
#[test]
fn mountpoint_bottleneck_and_fix() {
    let wf = montage(6, 128);
    let stage = |rows: &[memfs::mtc::experiments::scaling::ScalingRow], s: &str| {
        rows.iter().find(|r| r.stage == s).unwrap().stage_secs
    };
    // Single mount: 32 cores barely beats (or loses to) 8 cores on the
    // I/O-bound stage.
    let single8 = run_config(
        "t",
        &wf,
        Deployment::full(ClusterSpec::ec2(4))
            .with_cores_per_node(8)
            .with_single_mount(),
        FsModelKind::MemFs,
        &MONTAGE_STAGES,
    );
    let single32 = run_config(
        "t",
        &wf,
        Deployment::full(ClusterSpec::ec2(4))
            .with_cores_per_node(32)
            .with_single_mount(),
        FsModelKind::MemFs,
        &MONTAGE_STAGES,
    );
    let speedup_single = stage(&single8, "mDiffFit") / stage(&single32, "mDiffFit");
    assert!(
        speedup_single < 1.8,
        "single mount should not scale 8->32 cores, got {speedup_single}x"
    );

    // Per-process mounts: scaling restored.
    let pp8 = run_config(
        "t",
        &wf,
        Deployment::full(ClusterSpec::ec2(4)).with_cores_per_node(8),
        FsModelKind::MemFs,
        &MONTAGE_STAGES,
    );
    let pp32 = run_config(
        "t",
        &wf,
        Deployment::full(ClusterSpec::ec2(4)).with_cores_per_node(32),
        FsModelKind::MemFs,
        &MONTAGE_STAGES,
    );
    let speedup_pp = stage(&pp8, "mDiffFit") / stage(&pp32, "mDiffFit");
    assert!(
        speedup_pp > speedup_single * 1.3,
        "per-process mounts must scale better: {speedup_pp}x vs {speedup_single}x"
    );
}

/// §5: MemFS scales horizontally — Montage 6 completes roughly 2x faster
/// each time the node count doubles.
#[test]
fn memfs_horizontal_scalability() {
    let wf = montage(6, 256);
    let mut prev = f64::INFINITY;
    for nodes in [8usize, 16, 32] {
        let rows = run_config(
            "t",
            &wf,
            Deployment::full(ClusterSpec::das4_ipoib(nodes)),
            FsModelKind::MemFs,
            &MONTAGE_STAGES,
        );
        let total: f64 = rows.iter().map(|r| r.stage_secs).sum();
        assert!(
            total < prev * 0.65,
            "insufficient scaling at {nodes} nodes: {total} vs previous {prev}"
        );
        prev = total;
    }
}

/// Table 2: the generators produce the paper's data volumes.
#[test]
fn workload_volumes() {
    let gb = 1e9;
    assert!((montage(6, 0).runtime_bytes() as f64 / gb - 50.0).abs() < 10.0);
    assert!((montage(12, 0).runtime_bytes() as f64 / gb - 250.0).abs() < 60.0);
    let b_das4 = blast::blast_das4(0).runtime_bytes() as f64 / gb;
    let b_ec2 = blast::blast_ec2(0).runtime_bytes() as f64 / gb;
    assert!((b_das4 - 200.0).abs() < 50.0, "{b_das4}");
    assert!((b_das4 - b_ec2).abs() / b_das4 < 0.02, "equal data sizes");
}

/// §4.2: BLAST completes on both systems at every paper scale (the
/// runtime data fits once raw fragments are reclaimed).
#[test]
fn blast_runs_on_both_systems() {
    let wf = blast::blast_das4(256);
    for fs in [FsModelKind::MemFs, FsModelKind::Amfs] {
        let rows = run_config(
            "t",
            &wf,
            Deployment::full(ClusterSpec::das4_ipoib(16)),
            fs,
            &["formatdb", "blastall"],
        );
        assert!(
            rows.iter().all(|r| r.failed.is_none()),
            "{fs:?} failed: {:?}",
            rows[0].failed
        );
    }
}
