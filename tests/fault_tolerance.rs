//! Fault-tolerance integration tests: the replication option of paper
//! §3.2.5, implemented and exercised end-to-end with failure injection.

use std::sync::Arc;

use memfs::memfs_core::{MemFs, MemFsConfig, MemFsError};
use memfs::memkv::{FailableClient, KvClient, LocalClient, Store, StoreConfig};

type Failable = FailableClient<LocalClient>;

fn failable_cluster(n: usize) -> (Vec<Arc<Failable>>, Vec<Arc<dyn KvClient>>) {
    let failables: Vec<Arc<Failable>> = (0..n)
        .map(|_| {
            Arc::new(FailableClient::new(LocalClient::new(Arc::new(Store::new(
                StoreConfig::default(),
            )))))
        })
        .collect();
    let clients = failables
        .iter()
        .map(|f| Arc::clone(f) as Arc<dyn KvClient>)
        .collect();
    (failables, clients)
}

fn config(replication: usize) -> MemFsConfig {
    MemFsConfig {
        stripe_size: 4096,
        write_buffer_size: 16 * 4096,
        read_cache_size: 16 * 4096,
        writer_threads: 2,
        prefetch_threads: 2,
        prefetch_window: 2,
        replication,
        ..MemFsConfig::default()
    }
}

#[test]
fn replicated_files_survive_one_server_failure() {
    let (failables, clients) = failable_cluster(4);
    let fs = MemFs::new(clients, config(2)).unwrap();
    let data: Vec<u8> = (0..100_000u32).map(|i| (i % 211) as u8).collect();
    fs.write_file("/replicated", &data).unwrap();

    // Kill each server in turn; every stripe has a surviving copy.
    for (victim, failable) in failables.iter().enumerate() {
        failable.set_down(true);
        assert_eq!(
            fs.read_to_vec("/replicated").unwrap(),
            data,
            "read failed with server {victim} down"
        );
        // Metadata (stat/readdir) also survives.
        assert_eq!(fs.stat("/replicated").unwrap().size, 100_000);
        assert_eq!(fs.readdir("/").unwrap().len(), 1);
        failable.set_down(false);
    }
}

#[test]
fn unreplicated_files_do_not_survive() {
    // The control: with the paper's r=1 configuration a failure loses
    // whatever stripes the dead server held.
    let (failables, clients) = failable_cluster(4);
    let fs = MemFs::new(clients, config(1)).unwrap();
    let data = vec![7u8; 100_000];
    fs.write_file("/fragile", &data).unwrap();

    // Some server holds at least one stripe or metadata record; killing
    // all-but-one must break something.
    failables[0].set_down(true);
    failables[1].set_down(true);
    failables[2].set_down(true);
    let read = fs.read_to_vec("/fragile");
    let stat = fs.stat("/fragile");
    assert!(
        read.is_err() || stat.is_err(),
        "r=1 should not survive 3 of 4 servers dying"
    );
}

#[test]
fn two_failures_defeat_two_way_replication() {
    let (failables, clients) = failable_cluster(4);
    let fs = MemFs::new(clients, config(2)).unwrap();
    fs.write_file("/f", &vec![1u8; 50_000]).unwrap();
    // Kill two ADJACENT servers: some key's primary+follower pair.
    failables[0].set_down(true);
    failables[1].set_down(true);
    let outcome = fs.read_to_vec("/f").and(fs.read_to_vec("/f"));
    // With adjacent pairs dead, at least one replica set is fully gone
    // (stripes spread over all pairs for a 13-stripe file).
    assert!(
        outcome.is_err(),
        "r=2 must not survive an adjacent double failure"
    );
}

#[test]
fn three_way_replication_survives_double_failure() {
    let (failables, clients) = failable_cluster(5);
    let fs = MemFs::new(clients, config(3)).unwrap();
    let data: Vec<u8> = (0..60_000u32).map(|i| (i % 199) as u8).collect();
    fs.write_file("/r3", &data).unwrap();
    failables[1].set_down(true);
    failables[2].set_down(true);
    assert_eq!(fs.read_to_vec("/r3").unwrap(), data);
}

#[test]
fn replication_multiplies_stored_bytes() {
    // "the total storage capacity of MemFS would be decreased n times"
    // (§3.2.5): measure it through the whole FS stack.
    let stored = |r: usize| -> u64 {
        let stores: Vec<Arc<Store>> = (0..4)
            .map(|_| Arc::new(Store::new(StoreConfig::default())))
            .collect();
        let clients: Vec<Arc<dyn KvClient>> = stores
            .iter()
            .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
            .collect();
        let fs = MemFs::new(clients, config(r)).unwrap();
        fs.write_file("/payload", &vec![0u8; 200_000]).unwrap();
        stores.iter().map(|s| s.bytes_used()).sum()
    };
    let r1 = stored(1);
    let r2 = stored(2);
    let ratio = r2 as f64 / r1 as f64;
    assert!((ratio - 2.0).abs() < 0.1, "r=2 stores {ratio}x of r=1");
}

#[test]
fn write_once_still_enforced_under_replication() {
    let (_, clients) = failable_cluster(3);
    let fs = MemFs::new(clients, config(2)).unwrap();
    fs.write_file("/once", b"first").unwrap();
    assert!(matches!(fs.create("/once"), Err(MemFsError::WriteOnce(_))));
    assert_eq!(fs.read_to_vec("/once").unwrap(), b"first");
}

#[test]
fn writes_fail_loudly_while_a_replica_is_down() {
    // All-or-error writes: a write during a failure reports the problem
    // instead of silently under-replicating.
    let (failables, clients) = failable_cluster(3);
    let fs = MemFs::new(clients, config(2)).unwrap();
    failables[1].set_down(true);
    let mut w = match fs.create("/during-outage") {
        Ok(w) => w,
        Err(MemFsError::Storage(_)) => return, // metadata write already failed loudly
        Err(e) => panic!("unexpected error {e}"),
    };
    let result = w.write_all(&vec![0u8; 60_000]).and_then(|_| w.close());
    assert!(matches!(result, Err(MemFsError::Storage(_))));
}
