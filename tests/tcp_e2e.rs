//! End-to-end test of the genuinely distributed deployment: MemFS mounted
//! over TCP connections to storage servers speaking the memcached text
//! protocol.

use std::sync::Arc;

use memfs::memfs_core::{MemFs, MemFsConfig};
use memfs::memkv::net::{KvServer, TcpClient};
use memfs::memkv::{KvClient, Store, StoreConfig};

fn tcp_cluster(n: usize) -> (Vec<KvServer>, Vec<Arc<dyn KvClient>>) {
    let servers: Vec<KvServer> = (0..n)
        .map(|_| {
            KvServer::spawn(Arc::new(Store::new(StoreConfig::default())), "127.0.0.1:0").unwrap()
        })
        .collect();
    let clients = servers
        .iter()
        .map(|s| Arc::new(TcpClient::connect(s.addr()).unwrap()) as Arc<dyn KvClient>)
        .collect();
    (servers, clients)
}

#[test]
fn memfs_over_tcp_round_trip() {
    let (servers, clients) = tcp_cluster(3);
    let fs = MemFs::new(
        clients,
        MemFsConfig {
            stripe_size: 64 * 1024,
            ..MemFsConfig::default()
        },
    )
    .unwrap();

    let data: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
    fs.mkdir("/net").unwrap();
    fs.write_file("/net/blob", &data).unwrap();
    assert_eq!(fs.read_to_vec("/net/blob").unwrap(), data);

    // Stripes really landed on multiple servers.
    let populated = servers
        .iter()
        .filter(|s| s.store().item_count() > 0)
        .count();
    assert_eq!(populated, 3, "stripes should reach every server");
}

#[test]
fn two_tcp_mounts_share_the_namespace() {
    let (_servers, clients) = tcp_cluster(2);
    // Each mount gets its own TCP connections to the same servers.
    let fs1 = MemFs::new(clients.clone(), MemFsConfig::default()).unwrap();
    let fs2 = MemFs::new(clients, MemFsConfig::default()).unwrap();

    fs1.write_file("/shared.txt", b"written by mount 1")
        .unwrap();
    assert_eq!(
        fs2.read_to_vec("/shared.txt").unwrap(),
        b"written by mount 1"
    );
    // Write-once holds across the wire too.
    assert!(fs2.create("/shared.txt").is_err());
}

#[test]
fn concurrent_tcp_writers() {
    let (_servers, clients) = tcp_cluster(3);
    let fs = MemFs::new(clients, MemFsConfig::default()).unwrap();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let fs = fs.clone();
            scope.spawn(move || {
                let data = vec![t as u8; 200_000];
                fs.write_file(&format!("/t{t}"), &data).unwrap();
                assert_eq!(fs.read_to_vec(&format!("/t{t}")).unwrap(), data);
            });
        }
    });
    assert_eq!(fs.readdir("/").unwrap().len(), 4);
}
