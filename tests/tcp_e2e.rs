//! End-to-end test of the genuinely distributed deployment: MemFS mounted
//! over TCP connections to storage servers speaking the memcached text
//! protocol — each server behind a deterministic shaped proxy
//! ([`memfs::memkv::testutil`]) so the traffic crosses a realistically
//! imperfect wire, not just loopback at memory speed.

use std::sync::Arc;
use std::time::Duration;

use memfs::memfs_core::{MemFs, MemFsConfig};
use memfs::memkv::net::PoolConfig;
use memfs::memkv::testutil::{Shape, ShapedCluster};
use memfs::memkv::KvClient;

/// A mild WAN-ish shape: visible per-burst latency, generous bandwidth.
fn shaped_cluster(n: usize) -> (ShapedCluster, Vec<Arc<dyn KvClient>>) {
    let cluster = ShapedCluster::spawn(n, Shape::lagged(Duration::from_millis(1)));
    let clients = cluster.clients(PoolConfig::default());
    (cluster, clients)
}

#[test]
fn memfs_over_tcp_round_trip() {
    let (cluster, clients) = shaped_cluster(3);
    let fs = MemFs::new(
        clients,
        MemFsConfig {
            stripe_size: 64 * 1024,
            ..MemFsConfig::default()
        },
    )
    .unwrap();

    let data: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
    fs.mkdir("/net").unwrap();
    fs.write_file("/net/blob", &data).unwrap();
    assert_eq!(fs.read_to_vec("/net/blob").unwrap(), data);

    // Stripes really landed on multiple servers.
    let populated = (0..cluster.len())
        .filter(|&i| cluster.server(i).store().item_count() > 0)
        .count();
    assert_eq!(populated, 3, "stripes should reach every server");
}

#[test]
fn two_tcp_mounts_share_the_namespace() {
    let (_cluster, clients) = shaped_cluster(2);
    // Each mount gets its own TCP connections to the same servers.
    let fs1 = MemFs::new(clients.clone(), MemFsConfig::default()).unwrap();
    let fs2 = MemFs::new(clients, MemFsConfig::default()).unwrap();

    fs1.write_file("/shared.txt", b"written by mount 1")
        .unwrap();
    assert_eq!(
        fs2.read_to_vec("/shared.txt").unwrap(),
        b"written by mount 1"
    );
    // Write-once holds across the wire too.
    assert!(fs2.create("/shared.txt").is_err());
}

#[test]
fn concurrent_tcp_writers() {
    let (_cluster, clients) = shaped_cluster(3);
    let fs = MemFs::new(clients, MemFsConfig::default()).unwrap();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let fs = fs.clone();
            scope.spawn(move || {
                let data = vec![t as u8; 200_000];
                fs.write_file(&format!("/t{t}"), &data).unwrap();
                assert_eq!(fs.read_to_vec(&format!("/t{t}")).unwrap(), data);
            });
        }
    });
    assert_eq!(fs.readdir("/").unwrap().len(), 4);
}

#[test]
fn unlink_frees_deep_zombie_file_under_latency() {
    // A leaked writer leaves a zombie whose length nobody knows; unlink
    // probes forward in delete rounds. With hundreds of stripes behind a
    // laggy wire, those rounds must be pipelined — paying per-stripe (or
    // even strictly per-round) latencies would take seconds here.
    let cluster = ShapedCluster::spawn(4, Shape::lagged(Duration::from_millis(5)));
    let clients = cluster.clients(PoolConfig::default());
    let fs = MemFs::new(
        clients,
        MemFsConfig {
            stripe_size: 4 * 1024,
            ..MemFsConfig::default()
        },
    )
    .unwrap();

    let mut w = fs.create("/zombie").unwrap();
    w.write_all(&vec![3u8; 320 * 4 * 1024]).unwrap();
    w.flush().unwrap();
    std::mem::forget(w); // the writer "crashes": close never runs

    let start = std::time::Instant::now();
    fs.unlink("/zombie").unwrap();
    let elapsed = start.elapsed();
    // 320 stripes at 5 ms injected latency: per-stripe round trips would
    // cost seconds; pipelined probe rounds finish far below that.
    assert!(
        elapsed < Duration::from_millis(1200),
        "zombie unlink not pipelined: {elapsed:?}"
    );

    // Every stripe was reclaimed and the name is reusable.
    let leftover: u64 = (0..cluster.len())
        .map(|i| cluster.server(i).store().bytes_used())
        .sum();
    assert!(
        leftover < 4096,
        "stripes not reclaimed: {leftover} bytes left"
    );
    fs.write_file("/zombie", b"alive").unwrap();
    assert_eq!(fs.read_to_vec("/zombie").unwrap(), b"alive");
}

#[test]
fn mount_survives_one_stalled_server_without_wedging_the_rest() {
    // The acceptance shape for the evented transport: one black-holed
    // server must cost its own keys a timeout, not paralyze the fan-out
    // to the healthy servers.
    let cluster = ShapedCluster::spawn(4, Shape::clean());
    let clients = cluster.clients(PoolConfig {
        timeout: Duration::from_millis(400),
        ..PoolConfig::default()
    });
    let fs = MemFs::new(
        clients,
        MemFsConfig {
            stripe_size: 16 * 1024,
            ..MemFsConfig::default()
        },
    )
    .unwrap();
    let data = vec![0xabu8; 256 * 1024];
    fs.write_file("/pre", &data).unwrap();
    assert_eq!(fs.read_to_vec("/pre").unwrap(), data);

    cluster.proxy(2).stall();
    let start = std::time::Instant::now();
    // 16 stripes spread over 4 servers; server 2's share must fail with a
    // timeout while the others answer, and the whole read must take about
    // one timeout — not one per stripe on the stalled server.
    let err = fs.read_to_vec("/pre").unwrap_err();
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(4),
        "stalled server serialized the fan-out: {elapsed:?}"
    );
    drop(err);

    // Healthy after the stall clears: reconnect and read everything.
    cluster.proxy(2).unstall();
    let recovered = (0..100).any(|_| {
        std::thread::sleep(Duration::from_millis(20));
        fs.read_to_vec("/pre").map(|v| v == data).unwrap_or(false)
    });
    assert!(recovered, "mount must recover once the stall clears");
}
