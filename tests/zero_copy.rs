//! Byte-accounting proof of the one-copy write path. The transport's
//! audit counter ([`memfs::memkv::audit::staged_bytes`]) is bumped at
//! every point where a payload byte is *staged* — copied into an
//! intermediate buffer between the caller and the socket. A
//! `Bytes`-backed write of stripe-aligned data must stage (almost)
//! nothing: stripes ride the shared buffer straight into the vectored
//! socket writer. A borrowed-slice write stages each byte exactly once.
//!
//! The counter is process-global, so this binary holds a single test —
//! parallel tests in the same process would race the deltas.

#![cfg(target_os = "linux")]

use std::sync::Arc;

use bytes::Bytes;
use memfs::memfs_core::{MemFs, MemFsConfig};
use memfs::memkv::audit::staged_bytes;
use memfs::memkv::net::KvServer;
use memfs::memkv::{Store, StoreConfig};

const STRIPE: usize = 64 * 1024;

/// Slack for metadata traffic (inode and manifest records are small
/// values, which the wire encoder legitimately inlines into the frame
/// head) — well under one stripe.
const SLACK: u64 = 4096;

#[test]
fn bytes_writes_stage_nothing_and_slice_writes_stage_once() {
    let mut servers: Vec<KvServer> = (0..4)
        .map(|_| {
            KvServer::spawn(Arc::new(Store::new(StoreConfig::default())), "127.0.0.1:0")
                .expect("bind storage server")
        })
        .collect();
    let addrs: Vec<_> = servers.iter().map(|s| s.addr()).collect();
    let config = MemFsConfig {
        stripe_size: STRIPE,
        ..MemFsConfig::default()
    };
    let fs = MemFs::connect(&addrs, config).unwrap();

    let data: Vec<u8> = (0..4 * STRIPE).map(|i| (i % 251) as u8).collect();

    // Stripe-aligned Bytes: zero payload staging. Each 64 KiB stripe is
    // split off the shared buffer (O(1) view), framed as an owned
    // segment, and written to the socket via iovecs.
    let owned = Bytes::from(data.clone());
    let before = staged_bytes();
    fs.write_file_bytes("/zero-copy", owned).unwrap();
    let staged = staged_bytes() - before;
    assert!(
        staged < SLACK,
        "Bytes write of {} payload bytes staged {staged} — a copy crept into the path",
        data.len()
    );

    // Borrowed slice: the caller's buffer must be staged into stripe
    // buffers exactly once — no less (it IS copied) and no more (it is
    // not copied again downstream).
    let before = staged_bytes();
    fs.write_file("/one-copy", &data).unwrap();
    let staged = staged_bytes() - before;
    assert!(
        staged >= data.len() as u64 && staged < data.len() as u64 + SLACK,
        "slice write of {} bytes staged {staged} — expected exactly one copy",
        data.len()
    );

    // The cheap path must still be the correct path.
    assert_eq!(fs.read_to_vec("/zero-copy").unwrap(), data);
    assert_eq!(fs.read_to_vec("/one-copy").unwrap(), data);

    for s in &mut servers {
        s.shutdown();
    }
}
