//! Scaling regression over the shaped-cluster harness: with per-server
//! bandwidth capped (so the servers, not loopback, are the bottleneck),
//! aggregate batched throughput must keep growing past 4 servers. The
//! blocking transport plateaued here because a fan-out occupied one
//! engine worker per server; the evented transport keeps every server's
//! batch in flight from a single caller thread.
//!
//! Gated behind `--ignored` (it moves tens of MiB through paced proxies,
//! ~seconds of wall clock); `scripts/verify.sh --threads` runs it.

use std::time::Instant;

use bytes::Bytes;
use memfs::memfs_core::{DistributorKind, ServerPool};
use memfs::memkv::net::PoolConfig;
use memfs::memkv::testutil::{seed_from_env, Rng, Shape, ShapedCluster};

/// Per-server bandwidth cap: slow enough that loopback and protocol
/// overhead vanish next to pacing, fast enough to keep the test short.
const SERVER_BPS: u64 = 6 << 20;
const VALUE_BYTES: usize = 64 * 1024;
const VALUES_PER_SERVER: usize = 16;
const ROUNDS: usize = 2;

/// Build items routing exactly `VALUES_PER_SERVER` values to each server,
/// so the aggregate measurement is symmetric by construction.
fn balanced_items(pool: &ServerPool, rng: &mut Rng) -> Vec<(Bytes, Bytes)> {
    let n = pool.n_servers();
    let mut remaining: Vec<usize> = vec![VALUES_PER_SERVER; n];
    let mut left = n * VALUES_PER_SERVER;
    let mut items = Vec::with_capacity(left);
    let value = Bytes::from(vec![0xB7u8; VALUE_BYTES]);
    while left > 0 {
        let key = Bytes::from(format!("s:/f{:016x}#0", rng.next_u64()));
        let server = pool.server_for(&key).0;
        if remaining[server] > 0 {
            remaining[server] -= 1;
            left -= 1;
            items.push((key, value.clone()));
        }
    }
    items
}

/// Best-of-rounds aggregate (write_bps, read_bps) for `n` shaped servers.
fn throughput(n: usize, rng: &mut Rng) -> (f64, f64) {
    let mut best_write = 0f64;
    let mut best_read = 0f64;
    for _ in 0..ROUNDS {
        let cluster = ShapedCluster::spawn(n, Shape::throttled(SERVER_BPS));
        let pool = ServerPool::with_options(
            cluster.clients(PoolConfig::default()),
            DistributorKind::default(),
            1,
            0,
        );
        let items = balanced_items(&pool, rng);
        let keys: Vec<Bytes> = items.iter().map(|(k, _)| k.clone()).collect();
        let total = (items.len() * VALUE_BYTES) as f64;

        let start = Instant::now();
        pool.set_many(&items).expect("shaped set_many");
        best_write = best_write.max(total / start.elapsed().as_secs_f64());

        let start = Instant::now();
        for r in pool.get_many(&keys) {
            assert_eq!(r.expect("shaped get_many").len(), VALUE_BYTES);
        }
        best_read = best_read.max(total / start.elapsed().as_secs_f64());
    }
    (best_write, best_read)
}

#[test]
#[ignore = "moves tens of MiB through paced proxies; run via verify.sh --threads"]
fn eight_shaped_servers_outscale_four_by_1_5x() {
    let seed = seed_from_env();
    eprintln!("shaped_scaling seed: {seed} (set MEMFS_SHAPE_SEED to reproduce)");
    let mut rng = Rng::new(seed);

    let (write4, read4) = throughput(4, &mut rng);
    let (write8, read8) = throughput(8, &mut rng);
    let write_scale = write8 / write4;
    let read_scale = read8 / read4;
    eprintln!(
        "4 servers: write {:.1} MB/s, read {:.1} MB/s; \
         8 servers: write {:.1} MB/s, read {:.1} MB/s \
         (scale {write_scale:.2}x / {read_scale:.2}x)",
        write4 / 1e6,
        read4 / 1e6,
        write8 / 1e6,
        read8 / 1e6,
    );
    assert!(
        write_scale >= 1.5,
        "8-server aggregate write throughput only {write_scale:.2}x the 4-server figure"
    );
    assert!(
        read_scale >= 1.5,
        "8-server aggregate read throughput only {read_scale:.2}x the 4-server figure"
    );
}
