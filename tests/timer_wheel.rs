//! The shared reactor's hierarchical timer wheel
//! ([`memfs::memkv::wheel::TimerWheel`]): cascade-boundary edge cases
//! and a randomized oracle check. The wheel replaced the reactor's
//! linear deadline scan, so its expiry behavior *is* the transport's
//! timeout behavior — never early, never lost, deterministic order.

use std::time::{Duration, Instant};

use memfs::memkv::testutil::{seed_from_env, Rng};
use memfs::memkv::wheel::TimerWheel;

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

#[test]
fn deadline_exactly_on_a_level_edge_fires_at_its_tick() {
    // 64 = level-1 window boundary, 4096 = level-2, 262144 = level-3.
    // Cascading runs before the same tick's level-0 slot fires, so an
    // edge deadline is delivered at its tick, not a window late.
    for edge in [64u64, 128, 4096, 8192, 262_144] {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        w.arm(t0 + ms(edge), edge);
        assert!(
            w.advance(t0 + ms(edge - 1)).is_empty(),
            "edge {edge} fired a tick early"
        );
        assert_eq!(
            w.advance(t0 + ms(edge)),
            vec![edge],
            "edge {edge} missed its own tick"
        );
        assert!(w.is_empty());
    }
}

#[test]
fn neighbors_of_an_edge_keep_their_order() {
    let t0 = Instant::now();
    let mut w = TimerWheel::new(t0);
    w.arm(t0 + ms(4095), 4095u64);
    w.arm(t0 + ms(4097), 4097u64);
    w.arm(t0 + ms(4096), 4096u64);
    assert_eq!(w.advance(t0 + ms(5000)), vec![4095, 4096, 4097]);
}

#[test]
fn far_future_deadline_neither_fires_early_nor_leaks() {
    let t0 = Instant::now();
    let mut w = TimerWheel::new(t0);
    // Way past the ~4.66 h horizon: clamps, never fires inside it.
    let id = w.arm(t0 + Duration::from_secs(60 * 60 * 24), ());
    assert!(w.advance(t0 + Duration::from_secs(3600)).is_empty());
    assert_eq!(w.len(), 1);
    assert_eq!(w.cancel(id), Some(()));
    assert!(w.is_empty());
}

#[test]
fn cancel_then_reinsert_uses_the_new_deadline() {
    let t0 = Instant::now();
    let mut w = TimerWheel::new(t0);
    let id = w.arm(t0 + ms(500), "old");
    assert_eq!(w.cancel(id), Some("old"));
    // Reinsert (reusing the freed slab slot) with an earlier deadline.
    let id2 = w.arm(t0 + ms(10), "new");
    assert_eq!(w.advance(t0 + ms(10)), vec!["new"]);
    // Both ids are now stale; neither cancels anything.
    assert_eq!(w.cancel(id), None);
    assert_eq!(w.cancel(id2), None);
    // And nothing ghost-fires at the old deadline.
    assert!(w.advance(t0 + ms(600)).is_empty());
}

#[test]
fn cancelled_timer_in_a_shared_slot_does_not_block_siblings() {
    let t0 = Instant::now();
    let mut w = TimerWheel::new(t0);
    // Same tick, three timers; cancel the middle one.
    let _a = w.arm(t0 + ms(100), 1u32);
    let b = w.arm(t0 + ms(100), 2u32);
    let _c = w.arm(t0 + ms(100), 3u32);
    assert_eq!(w.cancel(b), Some(2));
    assert_eq!(w.advance(t0 + ms(100)), vec![1, 3]);
}

/// Randomized arm/cancel/advance against a sorted-vec oracle: the wheel
/// must fire exactly the oracle's due set, in (deadline, arm order).
#[test]
fn expiry_order_matches_sorted_vec_oracle() {
    let seed = seed_from_env();
    eprintln!("timer_wheel oracle seed: {seed} (set MEMFS_SHAPE_SEED to reproduce)");
    let mut rng = Rng::new(seed);

    let t0 = Instant::now();
    let mut wheel = TimerWheel::new(t0);
    // Oracle rows: (effective tick, arm sequence, wheel id).
    let mut oracle: Vec<(u64, u64, memfs::memkv::wheel::TimerId)> = Vec::new();
    let mut now_ms: u64 = 0;
    let mut seq: u64 = 0;

    for _ in 0..2_000 {
        match rng.next_u64() % 100 {
            // Arm with a delay spanning all wheel levels.
            0..=59 => {
                let delay = 1 + rng.next_u64() % 9_000;
                let deadline_ms = now_ms + delay;
                let id = wheel.arm(t0 + ms(deadline_ms), seq);
                // The wheel clamps to at least one tick out; replicate.
                oracle.push((deadline_ms.max(now_ms + 1), seq, id));
                seq += 1;
            }
            // Cancel a random live timer.
            60..=79 => {
                if oracle.is_empty() {
                    continue;
                }
                let pick = (rng.next_u64() % oracle.len() as u64) as usize;
                let (_, payload, id) = oracle.swap_remove(pick);
                assert_eq!(wheel.cancel(id), Some(payload), "live cancel failed");
            }
            // Advance and compare the due set, order included.
            _ => {
                now_ms += 1 + rng.next_u64() % 400;
                let fired = wheel.advance(t0 + ms(now_ms));
                let mut due: Vec<(u64, u64)> = oracle
                    .iter()
                    .filter(|(tick, _, _)| *tick <= now_ms)
                    .map(|(tick, payload, _)| (*tick, *payload))
                    .collect();
                due.sort_unstable();
                oracle.retain(|(tick, _, _)| *tick > now_ms);
                let expected: Vec<u64> = due.into_iter().map(|(_, p)| p).collect();
                assert_eq!(
                    fired, expected,
                    "wheel expiry diverged from oracle at t={now_ms}ms (seed {seed})"
                );
            }
        }
        assert_eq!(wheel.len(), oracle.len(), "armed-count drift (seed {seed})");
    }

    // Drain: everything still armed must fire exactly once.
    now_ms += 10_000;
    let fired = wheel.advance(t0 + ms(now_ms));
    assert_eq!(fired.len(), oracle.len(), "drain lost timers (seed {seed})");
    assert!(wheel.is_empty());
}
