//! Property-based tests (proptest) on the core invariants:
//!
//! * read-equals-write through the real engine for arbitrary sizes,
//!   stripe sizes and read offsets;
//! * stripe layout covers ranges exactly, with no gaps or overlaps;
//! * directory-log folding agrees with a reference model under arbitrary
//!   add/remove interleavings;
//! * max-min fairness: feasibility and maximality on random instances;
//! * hash distributors are total and consistent-hash remapping is
//!   bounded.

use std::sync::Arc;

use memfs::hashring::{Distributor, HashScheme, KetamaRing, ModuloRing};
use memfs::memfs_core::layout::StripeLayout;
use memfs::memfs_core::meta::{encode_add, encode_remove, fold_dir_log, ChildKind};
use memfs::memfs_core::{MemFs, MemFsConfig};
use memfs::memkv::{KvClient, LocalClient, Store, StoreConfig};
use memfs::netsim::maxmin::maxmin_rates;
use proptest::prelude::*;

fn mount(n: usize, stripe: usize) -> MemFs {
    let clients: Vec<Arc<dyn KvClient>> = (0..n)
        .map(|_| {
            Arc::new(LocalClient::new(Arc::new(Store::new(
                StoreConfig::default(),
            )))) as Arc<dyn KvClient>
        })
        .collect();
    MemFs::new(
        clients,
        MemFsConfig {
            stripe_size: stripe,
            write_buffer_size: stripe * 4,
            read_cache_size: stripe * 4,
            writer_threads: 2,
            prefetch_threads: 2,
            prefetch_window: 2,
            ..MemFsConfig::default()
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn read_equals_write(
        len in 0usize..50_000,
        stripe in 512usize..8192,
        seed in any::<u64>(),
    ) {
        let data: Vec<u8> = (0..len).map(|i| (seed.wrapping_add(i as u64) % 251) as u8).collect();
        let fs = mount(3, stripe);
        fs.write_file("/p", &data).unwrap();
        prop_assert_eq!(fs.read_to_vec("/p").unwrap(), data);
    }

    #[test]
    fn random_offset_reads_match(
        len in 1usize..30_000,
        offset in 0usize..40_000,
        read_len in 1usize..5_000,
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i % 241) as u8).collect();
        let fs = mount(2, 1024);
        fs.write_file("/p", &data).unwrap();
        let r = fs.open("/p").unwrap();
        let mut buf = vec![0u8; read_len];
        let n = r.read_at(offset as u64, &mut buf).unwrap();
        let expected: &[u8] = if offset >= len {
            &[]
        } else {
            &data[offset..(offset + read_len).min(len)]
        };
        prop_assert_eq!(&buf[..n], expected);
    }

    #[test]
    fn layout_spans_partition_the_range(
        stripe in 1usize..10_000,
        file_size in 0u64..1_000_000,
        offset in 0u64..1_200_000,
        len in 0usize..100_000,
    ) {
        let layout = StripeLayout::new(stripe);
        let spans = layout.spans(file_size, offset, len);
        // Contiguity and coverage.
        let mut pos = offset.min(file_size.min(offset + len as u64));
        let clamped_end = (offset + len as u64).min(file_size);
        let mut covered = 0usize;
        for s in &spans {
            let abs = s.stripe * stripe as u64 + s.offset_in_stripe as u64;
            prop_assert_eq!(abs, pos, "gap or overlap");
            prop_assert!(s.len > 0 && s.len <= stripe);
            prop_assert!(s.offset_in_stripe < stripe);
            pos += s.len as u64;
            covered += s.len;
        }
        let expected = clamped_end.saturating_sub(offset) as usize;
        prop_assert_eq!(covered, expected);
    }

    #[test]
    fn dir_log_folding_matches_model(ops in proptest::collection::vec((0u8..3, 0u8..8), 0..60)) {
        use std::collections::BTreeMap;
        let mut log = Vec::new();
        let mut model: BTreeMap<String, ChildKind> = BTreeMap::new();
        for (op, name_idx) in ops {
            let name = format!("f{name_idx}");
            match op {
                0 => {
                    log.extend(encode_add(&name, ChildKind::File));
                    model.insert(name, ChildKind::File);
                }
                1 => {
                    log.extend(encode_add(&name, ChildKind::Dir));
                    model.insert(name, ChildKind::Dir);
                }
                _ => {
                    log.extend(encode_remove(&name));
                    model.remove(&name);
                }
            }
        }
        let folded = fold_dir_log(&log, "/d").unwrap();
        let expected: Vec<(String, ChildKind)> = model.into_iter().collect();
        prop_assert_eq!(folded, expected);
    }

    #[test]
    fn maxmin_is_feasible_and_maximal(
        caps in proptest::collection::vec(1.0f64..1000.0, 1..6),
        routes in proptest::collection::vec(
            proptest::collection::btree_set(0usize..6, 1..4),
            1..10,
        ),
    ) {
        let nc = caps.len();
        let flows: Vec<Vec<usize>> = routes
            .iter()
            .map(|r| r.iter().map(|&c| c % nc).collect::<Vec<_>>())
            .map(|mut r| {
                r.sort_unstable();
                r.dedup();
                r
            })
            .collect();
        let rates = maxmin_rates(&caps, &flows);
        let mut used = vec![0.0f64; nc];
        for (f, route) in flows.iter().enumerate() {
            prop_assert!(rates[f] >= 0.0);
            for &c in route {
                used[c] += rates[f];
            }
        }
        for c in 0..nc {
            prop_assert!(used[c] <= caps[c] * (1.0 + 1e-6), "oversubscribed {c}");
        }
        for (f, route) in flows.iter().enumerate() {
            let saturated = route.iter().any(|&c| used[c] >= caps[c] * (1.0 - 1e-6));
            prop_assert!(saturated, "flow {f} could still grow");
        }
    }

    #[test]
    fn distributors_are_total_and_stable(
        keys in proptest::collection::vec("[a-z0-9/._-]{1,40}", 1..50),
        n_servers in 1usize..32,
    ) {
        let modulo = ModuloRing::new(n_servers, HashScheme::Fnv1a);
        let ketama = KetamaRing::with_n_servers(n_servers, 32);
        for k in &keys {
            let m1 = modulo.server_for(k.as_bytes());
            let m2 = modulo.server_for(k.as_bytes());
            prop_assert_eq!(m1, m2);
            prop_assert!(m1.0 < n_servers);
            let k1 = ketama.server_for(k.as_bytes());
            prop_assert!(k1.0 < n_servers);
            prop_assert_eq!(k1, ketama.server_for(k.as_bytes()));
        }
    }

    #[test]
    fn ketama_remap_is_bounded(n in 4usize..24) {
        let before = KetamaRing::with_n_servers(n, 160);
        let after = KetamaRing::with_n_servers(n + 1, 160);
        let keys: Vec<String> = (0..800).map(|i| format!("s:/wf/file{i}#0")).collect();
        let moved = keys
            .iter()
            .filter(|k| before.server_for(k.as_bytes()) != after.server_for(k.as_bytes()))
            .count();
        // Ideal is 1/(n+1); allow 3x slack for virtual-point variance.
        let bound = (keys.len() * 3) / (n + 1) + 40;
        prop_assert!(moved <= bound, "moved {moved} of {} (bound {bound})", keys.len());
    }
}
