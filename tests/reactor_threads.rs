//! The tentpole property of the shared per-mount reactor: socket
//! multiplexing costs one thread per *mount*, not one per server. Before
//! the shared reactor every `TcpClient` spawned its own epoll loop, so a
//! 16-server mount burned 16 reactor threads; now all of them register
//! with one [`memfs::memkv::ReactorHandle`]. This binary holds exactly
//! one test on purpose — it counts process-wide threads by name, which
//! would race with parallel tests.

#![cfg(target_os = "linux")]

use std::sync::Arc;

use memfs::memfs_core::{MemFs, MemFsConfig};
use memfs::memkv::net::{KvServer, PoolConfig, TcpClient};
use memfs::memkv::{KvClient, ReactorHandle, Store, StoreConfig};

/// Live threads of this process whose name starts with `prefix`
/// (`comm` truncates at 15 chars, so prefixes must fit in that).
fn named_threads(prefix: &str) -> usize {
    std::fs::read_dir("/proc/self/task")
        .unwrap()
        .filter_map(|e| std::fs::read_to_string(e.unwrap().path().join("comm")).ok())
        .filter(|name| name.trim_end().starts_with(prefix))
        .count()
}

/// Reactor loops: `memkv-reactor` for a lone loop, `memkv-reactor/N`
/// for a sharded set — the prefix matches both, and does not match the
/// retired `memkv-reconnect` helper name.
fn reactor_threads() -> usize {
    named_threads("memkv-reactor")
}

/// The old transport spawned a short-lived `memkv-reconnect` thread per
/// reconnect attempt. Connects now run inside the loop, so this census
/// must stay at zero forever, including under reconnect pressure.
fn reconnect_threads() -> usize {
    named_threads("memkv-reconnec")
}

/// A spawned reactor names itself when it starts running, so poll briefly
/// instead of racing freshly-created (or freshly-joined) threads.
fn expect_reactor_threads(expected: usize, what: &str) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let n = reactor_threads();
        if n == expected {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "{what}: expected {expected} reactor threads, found {n}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

#[test]
fn sixteen_server_mount_runs_one_reactor_thread() {
    let mut servers: Vec<KvServer> = (0..16)
        .map(|_| {
            KvServer::spawn(Arc::new(Store::new(StoreConfig::default())), "127.0.0.1:0")
                .expect("bind storage server")
        })
        .collect();
    let addrs: Vec<_> = servers.iter().map(|s| s.addr()).collect();
    assert_eq!(reactor_threads(), 0, "no reactor threads before any client");

    // The old shape: standalone clients, one private reactor each.
    let standalone: Vec<TcpClient> = addrs
        .iter()
        .map(|a| TcpClient::connect_with(a, PoolConfig::default()).expect("connect"))
        .collect();
    expect_reactor_threads(16, "one private reactor per standalone client");
    drop(standalone);
    expect_reactor_threads(0, "dropping a client joins its private reactor");

    // The new shape: every client registers with one shared reactor.
    let reactor = ReactorHandle::new().expect("spawn shared reactor");
    let clients: Vec<Arc<dyn KvClient>> = addrs
        .iter()
        .map(|a| {
            Arc::new(
                TcpClient::connect_shared(a, PoolConfig::default(), &reactor).expect("connect"),
            ) as Arc<dyn KvClient>
        })
        .collect();
    let config = MemFsConfig {
        stripe_size: 4096,
        ..MemFsConfig::default()
    };
    let fs = MemFs::new(clients, config.clone()).unwrap();
    expect_reactor_threads(1, "16 shared clients multiplex on one reactor");

    // The single loop really carries traffic for all 16 servers.
    let data: Vec<u8> = (0..200_000u32).map(|i| (i % 249) as u8).collect();
    fs.write_file("/one-thread", &data).unwrap();
    assert_eq!(fs.read_to_vec("/one-thread").unwrap(), data);
    expect_reactor_threads(1, "traffic must not spawn more reactors");

    drop(fs);
    expect_reactor_threads(1, "the handle keeps the loop alive without clients");
    drop(reactor);
    expect_reactor_threads(0, "dropping the last handle joins the reactor");

    // `MemFs::connect` wires the same shape end to end: the mount owns
    // the handle, so dropping the mount tears the reactor down too.
    let fs = MemFs::connect(&addrs, config.clone()).unwrap();
    expect_reactor_threads(1, "MemFs::connect mounts on one shared reactor");
    fs.write_file("/again", &data).unwrap();
    assert_eq!(fs.read_to_vec("/again").unwrap(), data);
    drop(fs);
    expect_reactor_threads(0, "unmounting joins the mount's reactor");

    // `reactor_threads = 2` shards the 16 servers across two real loops:
    // exactly two reactor threads, still zero per-connection ones.
    let two_loops = MemFsConfig {
        reactor_threads: 2,
        ..config
    };
    let fs = MemFs::connect(&addrs, two_loops).unwrap();
    expect_reactor_threads(2, "reactor_threads=2 mounts exactly two loops");
    fs.write_file("/two-loops", &data).unwrap();
    assert_eq!(fs.read_to_vec("/two-loops").unwrap(), data);
    expect_reactor_threads(2, "sharded traffic must not spawn more loops");
    assert_eq!(
        reconnect_threads(),
        0,
        "clean traffic spawned a reconnect thread"
    );

    // Reconnect pressure: kill a server and keep submitting. The loop
    // absorbs every reconnect attempt itself — the per-attempt
    // `memkv-reconnect` helper thread must never reappear.
    servers[0].shutdown();
    for _ in 0..6 {
        let _ = fs.read_to_vec("/two-loops");
        assert_eq!(
            reconnect_threads(),
            0,
            "reconnect pressure spawned a helper thread"
        );
    }
    expect_reactor_threads(2, "reconnect pressure must not change the loop census");
    drop(fs);
    expect_reactor_threads(0, "unmounting joins both sharded reactors");

    for s in &mut servers {
        s.shutdown();
    }
}
