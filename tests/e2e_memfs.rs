//! End-to-end integration tests over the real MemFS engine: multiple
//! in-process storage servers, multiple mounts, concurrent writers and
//! readers — the full §3 data path with real bytes.

use std::sync::Arc;

use memfs::memfs_core::{DistributorKind, MemFs, MemFsConfig, MemFsError};
use memfs::memkv::{KvClient, LocalClient, Store, StoreConfig};

fn servers_with_stores(n: usize) -> (Vec<Arc<dyn KvClient>>, Vec<Arc<Store>>) {
    let stores: Vec<Arc<Store>> = (0..n)
        .map(|_| Arc::new(Store::new(StoreConfig::default())))
        .collect();
    let clients = stores
        .iter()
        .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
        .collect();
    (clients, stores)
}

fn small_config() -> MemFsConfig {
    MemFsConfig {
        stripe_size: 4096,
        write_buffer_size: 32 * 4096,
        read_cache_size: 32 * 4096,
        writer_threads: 3,
        prefetch_threads: 3,
        prefetch_window: 4,
        ..MemFsConfig::default()
    }
}

#[test]
fn full_lifecycle_across_two_mounts() {
    let (clients, _) = servers_with_stores(5);
    let fs1 = MemFs::new(clients.clone(), small_config()).unwrap();
    let fs2 = MemFs::new(clients, small_config()).unwrap();

    // Mount 1 builds a directory tree and writes files.
    fs1.mkdir_all("/wf/stage1").unwrap();
    let data: Vec<u8> = (0..100_000u32).map(|i| (i % 239) as u8).collect();
    fs1.write_file("/wf/stage1/a.out", &data).unwrap();

    // Mount 2 sees everything (shared namespace through the hash ring).
    let entries = fs2.readdir("/wf/stage1").unwrap();
    assert_eq!(entries.len(), 1);
    assert_eq!(fs2.read_to_vec("/wf/stage1/a.out").unwrap(), data);
    let stat = fs2.stat("/wf/stage1/a.out").unwrap();
    assert_eq!(stat.size, 100_000);

    // Mount 2 deletes; mount 1 notices.
    fs2.unlink("/wf/stage1/a.out").unwrap();
    assert!(matches!(
        fs1.open("/wf/stage1/a.out"),
        Err(MemFsError::NotFound(_))
    ));
    fs2.rmdir("/wf/stage1").unwrap();
    assert!(!fs1.exists("/wf/stage1").unwrap());
}

#[test]
fn pipeline_of_tasks_through_the_fs() {
    // A three-stage pipeline communicates exclusively through MemFS
    // files, like an MTC application would.
    let (clients, _) = servers_with_stores(4);
    let fs = MemFs::new(clients, small_config()).unwrap();
    fs.mkdir("/pipe").unwrap();

    // Stage 1: produce.
    let raw: Vec<u8> = (0..50_000u32).map(|i| (i % 127) as u8).collect();
    fs.write_file("/pipe/raw", &raw).unwrap();

    // Stage 2: transform (read + write through handles).
    let reader = fs.open("/pipe/raw").unwrap();
    let mut writer = fs.create("/pipe/cooked").unwrap();
    let mut buf = vec![0u8; 7_000]; // deliberately not stripe-aligned
    let mut offset = 0u64;
    loop {
        let n = reader.read_at(offset, &mut buf).unwrap();
        if n == 0 {
            break;
        }
        let cooked: Vec<u8> = buf[..n].iter().map(|&b| b.wrapping_mul(3)).collect();
        writer.write_all(&cooked).unwrap();
        offset += n as u64;
    }
    writer.close().unwrap();
    drop(reader);

    // Stage 3: verify.
    let cooked = fs.read_to_vec("/pipe/cooked").unwrap();
    assert_eq!(cooked.len(), raw.len());
    assert!(cooked
        .iter()
        .zip(&raw)
        .all(|(&c, &r)| c == r.wrapping_mul(3)));
}

#[test]
fn concurrent_producers_and_consumers() {
    let (clients, _) = servers_with_stores(4);
    let fs = MemFs::new(clients, small_config()).unwrap();
    fs.mkdir("/conc").unwrap();

    std::thread::scope(|scope| {
        // 4 producers, each writing 8 files.
        for p in 0..4 {
            let fs = fs.clone();
            scope.spawn(move || {
                for i in 0..8 {
                    let data = vec![(p * 8 + i) as u8; 20_000];
                    fs.write_file(&format!("/conc/p{p}_{i}"), &data).unwrap();
                }
            });
        }
    });

    // Consumers read everything back concurrently.
    std::thread::scope(|scope| {
        for c in 0..4 {
            let fs = fs.clone();
            scope.spawn(move || {
                for p in 0..4 {
                    for i in 0..8 {
                        let data = fs.read_to_vec(&format!("/conc/p{p}_{i}")).unwrap();
                        assert_eq!(data, vec![(p * 8 + i) as u8; 20_000], "c{c} p{p} i{i}");
                    }
                }
            });
        }
    });
    assert_eq!(fs.readdir("/conc").unwrap().len(), 32);
}

#[test]
fn storage_balance_matches_the_papers_claim() {
    // Write a workflow's worth of files and verify the symmetric
    // distribution on the actual stores.
    let (clients, stores) = servers_with_stores(8);
    let fs = MemFs::new(clients, small_config()).unwrap();
    for i in 0..64 {
        fs.write_file(&format!("/f{i:03}"), &vec![1u8; 32 * 1024])
            .unwrap();
    }
    let loads: Vec<u64> = stores.iter().map(|s| s.bytes_used()).collect();
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    for (i, &l) in loads.iter().enumerate() {
        assert!(
            (l as f64) > 0.5 * mean && (l as f64) < 1.5 * mean,
            "server {i}: {l} vs mean {mean} ({loads:?})"
        );
    }
}

#[test]
fn ketama_mount_round_trips() {
    let (clients, _) = servers_with_stores(4);
    let mut config = small_config();
    config.distributor = DistributorKind::Ketama {
        points_per_server: 64,
    };
    let fs = MemFs::new(clients, config).unwrap();
    let data = vec![9u8; 30_000];
    fs.write_file("/k", &data).unwrap();
    assert_eq!(fs.read_to_vec("/k").unwrap(), data);
}

#[test]
fn server_oom_surfaces_as_storage_error() {
    // A pool of tiny servers cannot absorb a large file; the writer gets
    // a loud storage error instead of silent data loss (paper §3.2.5's
    // rationale for refusing eviction).
    let stores: Vec<Arc<Store>> = (0..2)
        .map(|_| {
            Arc::new(Store::new(StoreConfig {
                memory_budget: 64 * 1024,
                ..StoreConfig::default()
            }))
        })
        .collect();
    let clients: Vec<Arc<dyn KvClient>> = stores
        .iter()
        .map(|s| Arc::new(LocalClient::new(Arc::clone(s))) as Arc<dyn KvClient>)
        .collect();
    let fs = MemFs::new(clients, small_config()).unwrap();
    let mut w = fs.create("/too-big").unwrap();
    let result = w.write_all(&vec![0u8; 1 << 20]).and_then(|_| w.close());
    assert!(matches!(result, Err(MemFsError::Storage(_))));
}

#[test]
fn sub_stripe_and_cross_stripe_reads() {
    let (clients, _) = servers_with_stores(3);
    let fs = MemFs::new(clients, small_config()).unwrap();
    let data: Vec<u8> = (0..40_000u32).map(|i| (i % 97) as u8).collect();
    fs.write_file("/r", &data).unwrap();
    let r = fs.open("/r").unwrap();
    // Offsets chosen to hit: inside one stripe, across a boundary, the
    // exact boundary, and the tail.
    for (offset, len) in [(10usize, 100usize), (4000, 200), (4096, 1), (39_990, 100)] {
        let mut buf = vec![0u8; len];
        let n = r.read_at(offset as u64, &mut buf).unwrap();
        let expected = &data[offset..(offset + len).min(data.len())];
        assert_eq!(&buf[..n], expected, "offset {offset} len {len}");
    }
}
