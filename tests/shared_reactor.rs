//! Behavior of the shared per-mount reactor under a shaped cluster:
//! one bad server must not wedge the one loop everyone multiplexes on,
//! and the loop's counters ([`memfs::memkv::ReactorStatsSnapshot`], via
//! `ServerPool::reactor_stats`) must describe what actually happened —
//! wakeups, cross-server completion batches, registered connections,
//! timeouts, reconnects.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use memfs::memfs_core::{DistributorKind, MemFsError, ServerPool};
use memfs::memkv::net::{KvServer, PoolConfig, TcpClient};
use memfs::memkv::testutil::{Shape, ShapedCluster, ShapedProxy};
use memfs::memkv::{KvClient, KvError, ReactorHandle, Store, StoreConfig};

const N: usize = 8;

/// One key per server, so a fan-out touches the whole cluster.
fn balanced_keys(pool: &ServerPool) -> Vec<Bytes> {
    let mut keys: Vec<Option<Bytes>> = vec![None; N];
    let mut i = 0u64;
    while keys.iter().any(Option::is_none) {
        let key = Bytes::from(format!("k{i}"));
        let server = pool.server_for(&key).0;
        if keys[server].is_none() {
            keys[server] = Some(key);
        }
        i += 1;
    }
    keys.into_iter().map(Option::unwrap).collect()
}

#[test]
fn stalled_server_is_isolated_and_counted_by_the_shared_loop() {
    let cluster = ShapedCluster::spawn(N, Shape::clean());
    let config = PoolConfig {
        timeout: Duration::from_millis(400),
        ..PoolConfig::default()
    };
    let clients = cluster.clients(config.clone());
    let pool = ServerPool::with_options(clients, DistributorKind::default(), 1, 0);

    // All eight clients share one reactor; its connection census covers
    // the whole mount.
    let snaps = pool.reactor_stats();
    assert_eq!(snaps.len(), 1, "eight clients must dedup to one reactor");
    assert_eq!(
        snaps[0].registered_connections,
        N * config.connections,
        "census covers every server's pooled connections"
    );

    let keys = balanced_keys(&pool);
    let payload = Bytes::from(vec![7u8; 32 << 10]);
    for key in &keys {
        pool.set(key, payload.clone()).unwrap();
    }
    for (r, key) in pool.get_many(&keys).iter().zip(&keys) {
        assert!(r.is_ok(), "warm-up read of {key:?} failed: {r:?}");
    }

    // Stall one server mid-mount. The other seven keep streaming through
    // the same epoll loop; only the stalled server's key times out.
    let stalled = 3;
    cluster.proxy(stalled).stall();
    let start = Instant::now();
    let results = pool.get_many(&keys);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(4),
        "stalled server serialized the shared loop: {elapsed:?}"
    );
    for (server, result) in results.iter().enumerate() {
        if server == stalled {
            let err = result.as_ref().expect_err("stalled server must time out");
            assert!(
                matches!(err, MemFsError::Storage(KvError::Timeout { .. })),
                "stalled server surfaced {err:?}, not KvError::Timeout"
            );
        } else {
            assert!(
                result.is_ok(),
                "healthy server {server} was dragged down: {result:?}"
            );
        }
    }

    let after = pool.reactor_stats()[0];
    assert!(after.wakeups > 0, "loop never woke: {after:?}");
    assert!(
        after.completions >= (2 * N) as u64,
        "two full fan-outs must complete at least {} exchanges: {after:?}",
        2 * N
    );
    assert!(
        after.completion_batches > 0 && after.completion_batches <= after.completions,
        "batch count out of range: {after:?}"
    );
    assert!(after.timeouts >= 1, "deadline wheel never fired: {after:?}");
    // The 400 ms deadline lives above the wheel's 64-tick level-0 span,
    // so firing it requires at least one cascade down the hierarchy.
    assert!(
        after.timer_cascades >= 1,
        "a 400ms deadline must cascade before firing: {after:?}"
    );
    assert!(
        after.bytes_tx >= (N * payload.len()) as u64,
        "tx byte counter missed the warm-up writes: {after:?}"
    );
    assert!(
        after.bytes_rx >= (N * payload.len()) as u64,
        "rx byte counter missed the warm-up reads: {after:?}"
    );

    // Recovery: once the stall clears, the loop reconnects the poisoned
    // connections and the stalled server's keys come back.
    cluster.proxy(stalled).unstall();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if pool.get(&keys[stalled]).is_ok() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "stalled server never recovered after unstall"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // The timeout killed one pooled connection; the gets above may have
    // round-robined onto its healthy siblings. Sweep every pooled
    // connection so the killed one gets used — its first submit must
    // lazily reconnect (and replay the idempotent get) rather than fail.
    for _ in 0..config.connections {
        pool.get(&keys[stalled]).unwrap();
    }
    let recovered = pool.reactor_stats()[0];
    assert!(
        recovered.reconnects >= 1,
        "recovery must go through a fenced reconnect: {recovered:?}"
    );
    assert_eq!(
        recovered.registered_connections,
        N * config.connections,
        "reconnects must not leak or drop registrations"
    );
    assert_eq!(
        recovered.connects_in_flight, 0,
        "settled mount must not report dangling connect attempts: {recovered:?}"
    );
}

#[test]
fn killed_server_fails_fast_without_blocking_siblings() {
    let cluster = ShapedCluster::spawn(N, Shape::clean());
    let config = PoolConfig {
        timeout: Duration::from_millis(400),
        ..PoolConfig::default()
    };
    let clients = cluster.clients(config);
    let pool = ServerPool::with_options(clients, DistributorKind::default(), 1, 0);
    let keys = balanced_keys(&pool);
    for key in &keys {
        pool.set(key, Bytes::from_static(b"v")).unwrap();
    }

    // A killed server severs its sockets: the shared loop fails that
    // server's requests fast (no waiting out the timeout) while the
    // seven others answer normally.
    let dead = 5;
    cluster.proxy(dead).kill();
    let start = Instant::now();
    let results = pool.get_many(&keys);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(4),
        "dead server wedged the shared loop: {elapsed:?}"
    );
    for (server, result) in results.iter().enumerate() {
        if server == dead {
            assert!(result.is_err(), "dead server must error");
        } else {
            assert!(
                result.is_ok(),
                "healthy server {server} failed alongside the dead one: {result:?}"
            );
        }
    }

    cluster.proxy(dead).revive();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if pool.get(&keys[dead]).is_ok() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "killed server never came back after revive"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn clean_traffic_reports_consistent_reactor_counters() {
    let cluster = ShapedCluster::spawn(4, Shape::clean());
    let clients = cluster.clients(PoolConfig::default());
    let pool = ServerPool::with_options(clients, DistributorKind::default(), 1, 0);

    let keys: Vec<Bytes> = (0..64).map(|i| Bytes::from(format!("c{i}"))).collect();
    for key in &keys {
        pool.set(key, Bytes::from(vec![1u8; 4096])).unwrap();
    }
    for r in pool.get_many(&keys) {
        r.unwrap();
    }

    let s = pool.reactor_stats();
    assert_eq!(s.len(), 1);
    let s = s[0];
    assert_eq!(
        s.registered_connections,
        4 * PoolConfig::default().connections
    );
    assert!(s.wakeups > 0);
    assert!(s.completions > 0);
    assert!(s.completion_batches > 0);
    assert!(
        s.batching_factor() >= 1.0,
        "factor: {}",
        s.batching_factor()
    );
    assert_eq!(s.timeouts, 0, "clean traffic must not time out");
    assert_eq!(s.reconnects, 0, "clean traffic must not reconnect");
    assert_eq!(
        s.connects_in_flight, 0,
        "clean traffic leaves no connects pending"
    );
    // 64 × 4 KiB values moved each way, plus framing.
    assert!(
        s.bytes_tx >= 64 * 4096,
        "tx bytes under the payload floor: {s:?}"
    );
    assert!(
        s.bytes_rx >= 64 * 4096,
        "rx bytes under the payload floor: {s:?}"
    );
}

/// Regression for the reconnect path: with connects running inside the
/// loop, a server whose listener is *gone* (hard `ECONNREFUSED`, not an
/// accept-then-EOF) must fail each request promptly while exponential
/// backoff keeps the loop from hammering connect attempts or spinning
/// hot. The old implementation spawned a `memkv-reconnect` thread per
/// attempt and could error out of the spawn itself under pressure.
#[test]
fn connect_refused_storm_surfaces_errors_and_backs_off() {
    let server = KvServer::spawn(Arc::new(Store::new(StoreConfig::default())), "127.0.0.1:0")
        .expect("bind storage server");
    let proxy = ShapedProxy::spawn(server.addr(), Shape::clean());
    let reactor = ReactorHandle::new().expect("spawn reactor");
    let config = PoolConfig {
        timeout: Duration::from_millis(150),
        connections: 1,
        ..PoolConfig::default()
    };
    let client =
        TcpClient::connect_shared(proxy.addr(), config, &reactor).expect("connect through proxy");
    let key = Bytes::from_static(b"storm");
    client.set(&key, Bytes::from_static(b"v")).unwrap();
    assert_eq!(client.get(&key).unwrap(), Bytes::from_static(b"v"));

    // Dropping the proxy closes its listener and severs the live
    // connection: every reconnect from here on is refused outright.
    let before = reactor.stats();
    drop(proxy);

    const STORM: usize = 30;
    let start = Instant::now();
    for i in 0..STORM {
        let got = client.get(&key);
        assert!(got.is_err(), "request {i} silently succeeded: {got:?}");
    }
    let elapsed = start.elapsed();
    // Each request must fail on its own (timeout or refused connect),
    // not queue behind a wedged reconnect loop.
    assert!(
        elapsed < Duration::from_secs(20),
        "refused storm serialized the loop: {elapsed:?}"
    );

    let after = reactor.stats();
    let attempts = after.reconnects - before.reconnects;
    assert!(attempts >= 1, "no reconnect was ever attempted: {after:?}");
    assert!(
        attempts < STORM as u64,
        "backoff failed: {attempts} connect attempts for {STORM} requests"
    );
    assert_eq!(
        after.connects_in_flight, 0,
        "refused connects must be torn down: {after:?}"
    );
    // A hot-spinning loop would rack up orders of magnitude more wakeups
    // than the handful each request needs (submit, timer, connect event).
    let wakeups = after.wakeups - before.wakeups;
    assert!(
        wakeups < 20_000,
        "loop ran hot during backoff: {wakeups} wakeups for {STORM} requests"
    );
}
