//! Reproducibility of the simulation stack: identical configurations must
//! produce bit-identical results, and independent model paths must agree
//! with each other.

use memfs::cluster::{ClusterSpec, Deployment};
use memfs::mtc::fsmodel::FsModelKind;
use memfs::mtc::montage::montage;
use memfs::mtc::sched::SchedulerKind;
use memfs::mtc::{blast, EnvelopeModel, WorkflowSim};

#[test]
fn workflow_sim_is_bit_reproducible() {
    let wf = montage(6, 128);
    let run = || {
        WorkflowSim {
            deployment: Deployment::full(ClusterSpec::das4_ipoib(8)),
            fs: FsModelKind::MemFs,
            scheduler: SchedulerKind::Uniform,
        }
        .run(&wf)
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
    assert_eq!(a.stage_secs, b.stage_secs);
    assert_eq!(a.peak_mem_per_node, b.peak_mem_per_node);
    assert_eq!(a.network_bytes.to_bits(), b.network_bytes.to_bits());
}

#[test]
fn amfs_sim_is_bit_reproducible() {
    let wf = blast::blast(64, 4, 64);
    let run = || {
        WorkflowSim {
            deployment: Deployment::full(ClusterSpec::das4_ipoib(8)).with_single_mount(),
            fs: FsModelKind::Amfs,
            scheduler: SchedulerKind::LocalityAware,
        }
        .run(&wf)
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
    assert_eq!(a.peak_mem_per_node, b.peak_mem_per_node);
}

#[test]
fn generators_are_deterministic() {
    let a = montage(6, 256);
    let b = montage(6, 256);
    assert_eq!(a.tasks.len(), b.tasks.len());
    assert_eq!(a.files.len(), b.files.len());
    for (fa, fb) in a.files.iter().zip(&b.files) {
        assert_eq!(fa.name, fb.name);
        assert_eq!(fa.size, fb.size);
    }
}

#[test]
fn sim_memory_agrees_with_workflow_accounting() {
    // MemFS keeps exactly one copy of everything, so the simulated
    // aggregate peak must equal staged inputs + runtime data (minus
    // transients, of which Montage has none).
    let wf = montage(6, 128);
    let r = WorkflowSim {
        deployment: Deployment::full(ClusterSpec::das4_ipoib(16)),
        fs: FsModelKind::MemFs,
        scheduler: SchedulerKind::Uniform,
    }
    .run(&wf);
    assert!(r.failed.is_none());
    let expected = wf.input_bytes() + wf.runtime_bytes();
    let diff = (r.aggregate_peak_mem as f64 - expected as f64).abs() / expected as f64;
    assert!(
        diff < 0.01,
        "sim peak {} vs accounting {expected}",
        r.aggregate_peak_mem
    );
}

#[test]
fn envelope_scales_linearly_where_the_paper_says_so() {
    // Cross-check the envelope's node scaling against an independent
    // computation at a different scale (pure-model consistency).
    let file = 1_000_000;
    for nodes in [8usize, 16, 32] {
        let small = EnvelopeModel::new(ClusterSpec::das4_ipoib(nodes));
        let double = EnvelopeModel::new(ClusterSpec::das4_ipoib(nodes * 2));
        let ratio = double.memfs_write(file).bandwidth / small.memfs_write(file).bandwidth;
        assert!(
            (ratio - 2.0).abs() < 0.05,
            "write scaling at {nodes}: {ratio}"
        );
        let ratio = double.memfs_open() / small.memfs_open();
        assert!(
            (ratio - 2.0).abs() < 0.05,
            "open scaling at {nodes}: {ratio}"
        );
    }
}

#[test]
fn network_bytes_track_data_volume() {
    // In a MemFS run on N nodes, (N-1)/N of every written and read byte
    // crosses the network; the simulated total must sit between 1x and 3x
    // the workflow's data volume (reads + writes, minus local shares).
    let wf = montage(6, 128);
    let n = 8.0;
    let r = WorkflowSim {
        deployment: Deployment::full(ClusterSpec::das4_ipoib(8)),
        fs: FsModelKind::MemFs,
        scheduler: SchedulerKind::Uniform,
    }
    .run(&wf);
    let data = (wf.input_bytes() + wf.runtime_bytes()) as f64;
    let remote_fraction = (n - 1.0) / n;
    assert!(
        r.network_bytes > data * remote_fraction * 0.9,
        "too little traffic: {} vs data {}",
        r.network_bytes,
        data
    );
    assert!(
        r.network_bytes < data * 4.0,
        "too much traffic: {} vs data {}",
        r.network_bytes,
        data
    );
}
